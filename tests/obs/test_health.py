"""The run-health engine: rules, monitor semantics, and determinism.

Four layers of guarantees, in increasing scope:

* :class:`HealthRules` is a validated, JSON-round-trippable document;
* :class:`HealthMonitor` emits transition events (enter-violation,
  recovered) deterministically from the values it is fed;
* the event JSONL sink round-trips with schema enforcement, and the
  Chrome trace grows ``ph: "i"`` instant markers for each event;
* a seeded 2-replica x 2-rank two-level run with an injected
  acceptance-rate fault reproduces a **golden** event stream bit for
  bit, while the health engine never perturbs the trajectory or the
  modeled clock (P = 1, 2, 4; thread and mp backends).
"""

import json
import math
from pathlib import Path

import numpy as np
import pytest

from repro.obs.events import (
    health_instant_events,
    read_events_jsonl,
    sort_events,
    validate_event,
    write_events_jsonl,
)
from repro.obs.health import (
    NOOP_HEALTH,
    HealthEvent,
    HealthMonitor,
    HealthRules,
    load_health_rules,
)
from repro.qmc.parallel import (
    WorldlineStripConfig,
    ising_block_program,
    worldline_strip_program,
)
from repro.qmc.two_level import TwoLevelConfig, two_level_program
from repro.vmp.machines import PARAGON
from repro.vmp.scheduler import run_spmd

GOLDEN_EVENTS = Path(__file__).parent / "data" / "golden_health_events.jsonl"

BACKENDS = ["thread", pytest.param("mp", marks=pytest.mark.tier1_fault)]


def _strip_cfg(n_sweeps=40):
    return WorldlineStripConfig(
        n_sites=16, jz=1.0, jxy=0.8, beta=0.9, n_slices=8,
        n_sweeps=n_sweeps, n_thermalize=5, sweep_seed=7,
    )


def _faulty_two_level():
    """2 replicas x 2 domain ranks with an impossible acceptance band.

    Checkerboard world-line acceptance sits far below 90%, so the band
    ``(0.9, 1.0)`` is a deterministic injected fault: every windowed
    check trips the acceptance rule on every rank.
    """
    cfg = TwoLevelConfig(
        replicas=2, domain_ranks=2, base=_strip_cfg(n_sweeps=20)
    )
    rules = HealthRules(interval=5, acceptance_band=(0.9, 1.0), rhat_max=1.05)
    return cfg, rules


def _run_faulty(backend="thread"):
    cfg, rules = _faulty_two_level()
    # Phase spans need the thread backend's in-process clock observers.
    return run_spmd(
        two_level_program, cfg.n_ranks, machine=PARAGON, seed=42,
        args=(cfg, None, rules), backend=backend,
        spans=(backend == "thread"),
    )


# ======================================================================
# rules document
# ======================================================================


class TestHealthRules:
    def test_defaults_round_trip(self):
        rules = HealthRules()
        assert HealthRules.from_doc(rules.to_doc()) == rules

    def test_json_file_round_trip(self, tmp_path):
        rules = HealthRules(interval=25, acceptance_band=(0.1, 0.6),
                            rhat_max=1.1, comm_fraction_max=0.5)
        path = tmp_path / "rules.json"
        path.write_text(json.dumps(rules.to_doc()))
        assert load_health_rules(path) == rules

    def test_partial_document_fills_defaults(self, tmp_path):
        path = tmp_path / "rules.json"
        path.write_text('{"rhat_max": 1.5}')
        rules = load_health_rules(path)
        assert rules.rhat_max == 1.5
        assert rules.interval == HealthRules().interval

    def test_unknown_keys_rejected(self):
        with pytest.raises(ValueError, match="unknown"):
            HealthRules.from_doc({"no_such_rule": 1})

    @pytest.mark.parametrize("kw", [
        {"interval": 0},
        {"acceptance_band": (0.9, 0.1)},
        {"acceptance_band": (-0.1, 0.5)},
        {"rhat_max": 0.5},
        {"comm_fraction_max": 2.0},
        {"acceptance_min_attempts": 0},
    ])
    def test_invalid_values_rejected(self, kw):
        with pytest.raises(ValueError):
            HealthRules(**kw)


# ======================================================================
# monitor semantics
# ======================================================================


class TestHealthMonitor:
    def test_acceptance_transition_and_recovery(self):
        mon = HealthMonitor(HealthRules(acceptance_band=(0.2, 0.8)))
        mon.check(10, attempted=100, accepted=50)      # in band
        mon.check(20, attempted=200, accepted=55)      # window rate 5%
        mon.check(30, attempted=300, accepted=60)      # still bad: no repeat
        mon.check(40, attempted=400, accepted=110)     # window rate 50%
        events = [HealthEvent.from_doc(d) for d in mon.event_docs()]
        rules = [(e.rule, e.severity, e.sweep) for e in events]
        assert rules == [
            ("acceptance", "warning", 20),
            ("acceptance", "info", 40),  # recovery
        ]

    def test_stall_is_critical(self):
        mon = HealthMonitor(HealthRules())
        mon.check(10, attempted=100, accepted=10)
        mon.check(20, attempted=100, accepted=10)  # no moves attempted
        (event,) = mon.event_docs()
        assert event["rule"] == "stall" and event["severity"] == "critical"
        assert not mon.summary()["healthy"]

    def test_nan_fires_once_per_observable(self):
        mon = HealthMonitor(HealthRules(), rank=3)
        mon.observe("energy", 1.0, 1)
        mon.observe("energy", math.nan, 2)
        mon.observe("energy", math.inf, 3)
        mon.observe("magnetization", math.nan, 3)
        events = mon.event_docs()
        assert [(e["rule"], e["sweep"], e["rank"]) for e in events] == [
            ("nan:energy", 2, 3), ("nan:magnetization", 3, 3),
        ]
        assert all(e["severity"] == "critical" for e in events)
        # The poisoned values never reach the estimators.
        assert mon.summary()["observables"]["energy"]["count"] == 1

    def test_comm_fraction_rule(self):
        mon = HealthMonitor(HealthRules(comm_fraction_max=0.5))
        mon.check(10, attempted=10, accepted=5, model_seconds=1.0,
                  comm_seconds=0.8)
        (event,) = mon.event_docs()
        assert event["rule"] == "comm_fraction"
        assert event["severity"] == "warning"

    def test_rhat_transition(self):
        mon = HealthMonitor(HealthRules(rhat_max=1.2), replica=1)
        mon.observe_rhat("energy", 1.5, 10)
        mon.observe_rhat("energy", 1.4, 20)  # still bad: silent
        mon.observe_rhat("energy", 1.01, 30)
        events = mon.event_docs()
        assert [(e["rule"], e["severity"]) for e in events] == [
            ("rhat:energy", "warning"), ("rhat:energy", "info"),
        ]
        assert all(e["replica"] == 1 for e in events)
        assert mon.summary()["rhat"]["energy"] == 1.01

    def test_healthy_run_is_quiet(self):
        mon = HealthMonitor(HealthRules())
        for s in range(10, 100, 10):
            mon.observe("energy", -1.0 + 0.01 * s, s)
            mon.check(s, attempted=10 * s, accepted=5 * s)
        assert mon.event_docs() == []
        assert mon.summary()["healthy"]

    def test_noop_monitor_is_inert(self):
        assert not NOOP_HEALTH.enabled
        NOOP_HEALTH.observe("energy", math.nan, 1)
        NOOP_HEALTH.observe_rhat("energy", 9.0, 1)
        NOOP_HEALTH.check(1, attempted=0, accepted=0)
        assert NOOP_HEALTH.event_docs() == []


# ======================================================================
# event sink + trace instants
# ======================================================================


class TestEventSink:
    def test_jsonl_round_trip(self, tmp_path):
        mon = HealthMonitor(HealthRules(), rank=1)
        mon.observe("energy", math.nan, 4)
        path = tmp_path / "events.jsonl"
        write_events_jsonl(path, mon.event_docs())
        assert read_events_jsonl(path) == mon.event_docs()
        header = json.loads(path.read_text().splitlines()[0])
        assert header == {"kind": "schema", "schema": "repro.health.events",
                          "version": 1}

    def test_unknown_version_rejected(self, tmp_path):
        path = tmp_path / "events.jsonl"
        path.write_text('{"kind": "schema", "schema": "repro.health.events", '
                        '"version": 99}\n')
        with pytest.raises(ValueError, match="version"):
            read_events_jsonl(path)

    def test_validate_event_rejects_malformed(self):
        good = HealthEvent("stall", "critical", 3, 0, "x").to_doc()
        validate_event(good)
        for key in ("rule", "severity", "sweep", "rank", "message"):
            bad = dict(good)
            del bad[key]
            with pytest.raises(ValueError):
                validate_event(bad)
        with pytest.raises(ValueError):
            validate_event({**good, "severity": "fatal"})

    def test_sort_events_is_deterministic(self):
        docs = [
            HealthEvent("b", "info", 5, 1, "x").to_doc(),
            HealthEvent("a", "info", 5, 1, "x").to_doc(),
            HealthEvent("z", "info", 1, 0, "x").to_doc(),
        ]
        ordered = sort_events(docs)
        assert [(e["sweep"], e["rank"], e["rule"]) for e in ordered] == [
            (1, 0, "z"), (5, 1, "a"), (5, 1, "b"),
        ]

    def test_instant_events_schema(self):
        event = HealthEvent("acceptance", "warning", 10, 2, "low",
                            replica=1, t_model=0.5)
        (inst,) = health_instant_events([event.to_doc()])
        assert inst["ph"] == "i" and inst["s"] == "t"
        assert inst["tid"] == 2 and inst["ts"] == 500000.0
        assert inst["cat"] == "health"
        assert inst["args"]["sweep"] == 10


# ======================================================================
# the golden fault run: deterministic end-to-end event stream
# ======================================================================


class TestGoldenFaultRun:
    def test_event_stream_matches_golden(self, tmp_path):
        """Injected acceptance fault reproduces the committed stream.

        Regenerate (after an intentional change) with::

            PYTHONPATH=src python -c "from tests.obs.test_health import \
regenerate_golden; regenerate_golden()"
        """
        result = _run_faulty()
        events = result.health_events()
        assert events, "fault injection produced no events"
        # Every rank of both replicas trips the acceptance rule.
        accept = [e for e in events if e["rule"] == "acceptance"]
        assert {e["rank"] for e in accept} == {0, 1, 2, 3}
        assert {e.get("replica") for e in accept} == {0, 1}
        path = tmp_path / "events.jsonl"
        write_events_jsonl(path, events)
        assert path.read_text() == GOLDEN_EVENTS.read_text()

    @pytest.mark.parametrize("backend",
                             [pytest.param("mp", marks=pytest.mark.tier1_fault)])
    def test_event_stream_backend_invariant(self, backend):
        assert _run_faulty(backend).health_events() == \
            _run_faulty("thread").health_events()

    def test_events_visible_in_chrome_trace(self, tmp_path):
        result = _run_faulty()
        doc = json.loads(result.write_chrome_trace(
            tmp_path / "trace.json").read_text())
        instants = [e for e in doc["traceEvents"] if e.get("ph") == "i"]
        assert len(instants) == len(result.health_events())
        assert {e["cat"] for e in instants} == {"health"}
        assert {e["s"] for e in instants} == {"t"}


def regenerate_golden() -> None:
    write_events_jsonl(GOLDEN_EVENTS, _run_faulty().health_events())
    print(f"wrote {GOLDEN_EVENTS}")


# ======================================================================
# the identity guarantee: health never perturbs the physics
# ======================================================================


@pytest.mark.parametrize("backend", BACKENDS)
class TestHealthBitIdentity:
    @pytest.mark.parametrize("n_ranks", [1, 2, 4])
    def test_strip_trajectory_unchanged(self, backend, n_ranks):
        cfg = _strip_cfg()
        ref = run_spmd(worldline_strip_program, n_ranks, machine=PARAGON,
                       seed=11, args=(cfg,), backend=backend)
        got = run_spmd(worldline_strip_program, n_ranks, machine=PARAGON,
                       seed=11, args=(cfg, None, HealthRules(interval=5)),
                       backend=backend)
        for rv, gv in zip(ref.values, got.values):
            assert np.array_equal(rv["energy"], gv["energy"])
            assert np.array_equal(rv["magnetization"], gv["magnetization"])
            assert "health_summary" in gv and "health_summary" not in rv
        assert got.elapsed_model_time == ref.elapsed_model_time

    def test_two_level_trajectory_unchanged(self, backend):
        cfg = TwoLevelConfig(replicas=2, domain_ranks=2,
                             base=_strip_cfg(n_sweeps=10))
        ref = run_spmd(two_level_program, cfg.n_ranks, machine=PARAGON,
                       seed=11, args=(cfg,), backend=backend)
        got = run_spmd(two_level_program, cfg.n_ranks, machine=PARAGON,
                       seed=11, args=(cfg, None, HealthRules(interval=3)),
                       backend=backend)
        for rv, gv in zip(ref.values, got.values):
            assert np.array_equal(rv["energy"], gv["energy"])
        # The modeled makespan is NOT asserted equal here: the leader-side
        # R-hat allreduce is real modeled traffic, charged to the ensemble
        # categories by design.  The physics trajectory above is the
        # identity guarantee.
        assert got.elapsed_model_time >= ref.elapsed_model_time


class TestBlockDriverHealth:
    def test_block_program_emits_and_preserves(self):
        from repro.qmc.parallel import IsingBlockConfig

        cfg = IsingBlockConfig(lx=8, ly=8, lt=4, kx=0.3, ky=0.3, kt=0.3,
                               n_sweeps=20, n_thermalize=2, sweep_seed=5)
        ref = run_spmd(ising_block_program, 2, machine=PARAGON, seed=9,
                       args=(cfg,))
        got = run_spmd(ising_block_program, 2, machine=PARAGON, seed=9,
                       args=(cfg, None, HealthRules(interval=5)))
        for rv, gv in zip(ref.values, got.values):
            assert np.array_equal(rv["magnetization"], gv["magnetization"])
            assert "health_summary" in gv
        assert got.elapsed_model_time == ref.elapsed_model_time
