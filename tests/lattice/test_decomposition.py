"""Tests for domain decompositions."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.lattice.decomposition import BlockDecomposition, StripDecomposition


class TestStripDecomposition:
    def test_covers_all_columns_once(self):
        d = StripDecomposition(17, 4)
        owned = [c for p in d.pieces for c in range(p.start, p.stop)]
        assert owned == list(range(17))

    def test_balanced_sizes(self):
        d = StripDecomposition(10, 3)
        sizes = [p.n_owned for p in d.pieces]
        assert sizes == [4, 3, 3]

    def test_neighbor_rings(self):
        d = StripDecomposition(8, 4)
        p = d.piece(0)
        assert p.left_rank == 3 and p.right_rank == 1

    def test_require_even(self):
        StripDecomposition(8, 2, require_even=True)  # 4+4 ok
        with pytest.raises(ValueError, match="odd block"):
            StripDecomposition(10, 4, require_even=True)

    def test_more_ranks_than_columns_rejected(self):
        with pytest.raises(ValueError):
            StripDecomposition(3, 4)

    def test_owner_of(self):
        d = StripDecomposition(9, 3)
        for c in range(9):
            p = d.piece(d.owner_of(c))
            assert p.start <= c < p.stop
        with pytest.raises(ValueError):
            d.owner_of(9)

    def test_scatter_gather_roundtrip(self):
        d = StripDecomposition(12, 3)
        global_arr = np.arange(12 * 5).reshape(12, 5)
        parts = [d.scatter(global_arr, r) for r in range(3)]
        np.testing.assert_array_equal(d.gather(parts), global_arr)

    def test_scatter_returns_copy(self):
        d = StripDecomposition(6, 2)
        g = np.zeros((6, 2))
        part = d.scatter(g, 0)
        part[:] = 1.0
        assert g.sum() == 0.0

    def test_gather_validates_shapes(self):
        d = StripDecomposition(6, 2)
        with pytest.raises(ValueError):
            d.gather([np.zeros((2, 1)), np.zeros((3, 1))])

    @given(st.integers(1, 16), st.integers(1, 64))
    def test_partition_property(self, n_ranks, extra):
        n_cols = n_ranks + extra
        d = StripDecomposition(n_cols, n_ranks)
        sizes = [p.n_owned for p in d.pieces]
        assert sum(sizes) == n_cols
        assert max(sizes) - min(sizes) <= 1


class TestBlockDecomposition:
    def test_covers_grid_once(self):
        d = BlockDecomposition(8, 6, 4)
        seen = np.zeros((8, 6), dtype=int)
        for p in d.pieces:
            seen[p.x_start : p.x_stop, p.y_start : p.y_stop] += 1
        assert np.all(seen == 1)

    def test_default_grid_most_square(self):
        d = BlockDecomposition(16, 16, 12)
        assert (d.px, d.py) == (3, 4)

    def test_explicit_grid(self):
        d = BlockDecomposition(16, 4, 8, process_grid=(8, 1))
        assert d.px == 8 and d.py == 1

    def test_grid_mismatch_rejected(self):
        with pytest.raises(ValueError):
            BlockDecomposition(8, 8, 4, process_grid=(3, 2))

    def test_too_small_lattice_rejected(self):
        with pytest.raises(ValueError):
            BlockDecomposition(2, 2, 16)

    def test_neighbors_are_toroidal(self):
        d = BlockDecomposition(8, 8, 4, process_grid=(2, 2))
        p = d.piece(0)  # process coords (0, 0)
        assert p.east == d.piece(2).rank or p.east == 2
        assert p.west == 2  # wraps to (1, 0)
        assert p.north == 1
        assert p.south == 1

    def test_owner_of(self):
        d = BlockDecomposition(8, 8, 4)
        for x in range(8):
            for y in range(8):
                p = d.piece(d.owner_of(x, y))
                assert p.x_start <= x < p.x_stop
                assert p.y_start <= y < p.y_stop

    def test_scatter_gather_roundtrip(self):
        d = BlockDecomposition(8, 6, 6, process_grid=(3, 2))
        g = np.arange(8 * 6 * 3).reshape(8, 6, 3)
        parts = [d.scatter(g, r) for r in range(6)]
        np.testing.assert_array_equal(d.gather(parts), g)

    def test_require_even(self):
        BlockDecomposition(8, 8, 4, require_even=True)
        with pytest.raises(ValueError, match="odd extents"):
            BlockDecomposition(10, 8, 4, process_grid=(4, 1), require_even=True)

    @given(st.integers(1, 4), st.integers(1, 4))
    def test_partition_property(self, px, py):
        lx, ly = 4 * px, 4 * py
        d = BlockDecomposition(lx, ly, px * py, process_grid=(px, py))
        total = sum(p.shape[0] * p.shape[1] for p in d.pieces)
        assert total == lx * ly
