"""Tests for domain decompositions."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.lattice.decomposition import (
    BlockDecomposition,
    HaloSpec,
    OverlapPartition,
    StripDecomposition,
    pack_plane,
    unpack_plane,
)
from repro.vmp.machines import PARAGON


class TestStripDecomposition:
    def test_covers_all_columns_once(self):
        d = StripDecomposition(17, 4)
        owned = [c for p in d.pieces for c in range(p.start, p.stop)]
        assert owned == list(range(17))

    def test_balanced_sizes(self):
        d = StripDecomposition(10, 3)
        sizes = [p.n_owned for p in d.pieces]
        assert sizes == [4, 3, 3]

    def test_neighbor_rings(self):
        d = StripDecomposition(8, 4)
        p = d.piece(0)
        assert p.left_rank == 3 and p.right_rank == 1

    def test_require_even(self):
        StripDecomposition(8, 2, require_even=True)  # 4+4 ok
        with pytest.raises(ValueError, match="odd block"):
            StripDecomposition(10, 4, require_even=True)

    def test_more_ranks_than_columns_rejected(self):
        with pytest.raises(ValueError):
            StripDecomposition(3, 4)

    def test_owner_of(self):
        d = StripDecomposition(9, 3)
        for c in range(9):
            p = d.piece(d.owner_of(c))
            assert p.start <= c < p.stop
        with pytest.raises(ValueError):
            d.owner_of(9)

    def test_scatter_gather_roundtrip(self):
        d = StripDecomposition(12, 3)
        global_arr = np.arange(12 * 5).reshape(12, 5)
        parts = [d.scatter(global_arr, r) for r in range(3)]
        np.testing.assert_array_equal(d.gather(parts), global_arr)

    def test_scatter_returns_copy(self):
        d = StripDecomposition(6, 2)
        g = np.zeros((6, 2))
        part = d.scatter(g, 0)
        part[:] = 1.0
        assert g.sum() == 0.0

    def test_gather_validates_shapes(self):
        d = StripDecomposition(6, 2)
        with pytest.raises(ValueError):
            d.gather([np.zeros((2, 1)), np.zeros((3, 1))])

    @given(st.integers(1, 16), st.integers(1, 64))
    def test_partition_property(self, n_ranks, extra):
        n_cols = n_ranks + extra
        d = StripDecomposition(n_cols, n_ranks)
        sizes = [p.n_owned for p in d.pieces]
        assert sum(sizes) == n_cols
        assert max(sizes) - min(sizes) <= 1


class TestBlockDecomposition:
    def test_covers_grid_once(self):
        d = BlockDecomposition(8, 6, 4)
        seen = np.zeros((8, 6), dtype=int)
        for p in d.pieces:
            seen[p.x_start : p.x_stop, p.y_start : p.y_stop] += 1
        assert np.all(seen == 1)

    def test_default_grid_most_square(self):
        d = BlockDecomposition(16, 16, 12)
        assert (d.px, d.py) == (3, 4)

    def test_explicit_grid(self):
        d = BlockDecomposition(16, 4, 8, process_grid=(8, 1))
        assert d.px == 8 and d.py == 1

    def test_grid_mismatch_rejected(self):
        with pytest.raises(ValueError):
            BlockDecomposition(8, 8, 4, process_grid=(3, 2))

    def test_too_small_lattice_rejected(self):
        with pytest.raises(ValueError):
            BlockDecomposition(2, 2, 16)

    def test_neighbors_are_toroidal(self):
        d = BlockDecomposition(8, 8, 4, process_grid=(2, 2))
        p = d.piece(0)  # process coords (0, 0)
        assert p.east == d.piece(2).rank or p.east == 2
        assert p.west == 2  # wraps to (1, 0)
        assert p.north == 1
        assert p.south == 1

    def test_owner_of(self):
        d = BlockDecomposition(8, 8, 4)
        for x in range(8):
            for y in range(8):
                p = d.piece(d.owner_of(x, y))
                assert p.x_start <= x < p.x_stop
                assert p.y_start <= y < p.y_stop

    def test_scatter_gather_roundtrip(self):
        d = BlockDecomposition(8, 6, 6, process_grid=(3, 2))
        g = np.arange(8 * 6 * 3).reshape(8, 6, 3)
        parts = [d.scatter(g, r) for r in range(6)]
        np.testing.assert_array_equal(d.gather(parts), g)

    def test_require_even(self):
        BlockDecomposition(8, 8, 4, require_even=True)
        with pytest.raises(ValueError, match="odd extents"):
            BlockDecomposition(10, 8, 4, process_grid=(4, 1), require_even=True)

    @given(st.integers(1, 4), st.integers(1, 4))
    def test_partition_property(self, px, py):
        lx, ly = 4 * px, 4 * py
        d = BlockDecomposition(lx, ly, px * py, process_grid=(px, py))
        total = sum(p.shape[0] * p.shape[1] for p in d.pieces)
        assert total == lx * ly


class TestPackPlane:
    def test_full_plane_roundtrip(self):
        plane = np.arange(12, dtype=np.int8).reshape(3, 4)
        buf = pack_plane(plane)
        assert buf.flags.c_contiguous
        dest = np.zeros_like(plane)
        unpack_plane(dest, buf)
        np.testing.assert_array_equal(dest, plane)

    def test_noncontiguous_plane_is_made_contiguous(self):
        base = np.arange(24, dtype=np.int8).reshape(4, 6)
        view = base[::2]  # strided boundary plane
        buf = pack_plane(view)
        assert buf.flags.c_contiguous
        np.testing.assert_array_equal(buf, view)

    def test_masked_roundtrip_preserves_site_positions(self):
        # Color-packed halo: only one parity ships, and the same global
        # mask on both ends puts every site back where it came from.
        rng = np.random.default_rng(3)
        plane = rng.integers(-1, 2, size=(4, 8)).astype(np.int8)
        y, t = np.meshgrid(np.arange(4), np.arange(8), indexing="ij")
        mask = (y + t) % 2 == 0
        buf = pack_plane(plane, mask)
        assert buf.size == mask.sum()
        dest = np.zeros_like(plane)
        unpack_plane(dest, buf, mask)
        np.testing.assert_array_equal(dest[mask], plane[mask])
        assert np.all(dest[~mask] == 0)


class TestHaloSpec:
    def test_aggregation_counts_one_message_per_neighbor(self):
        spec = HaloSpec(neighbors=2, sites_per_message=128.0)
        assert spec.messages_per_exchange == 2
        assert spec.bytes_per_message(bytes_per_site=1) == 128.0

    def test_seconds_follow_alpha_beta(self):
        spec = HaloSpec(neighbors=2, sites_per_message=128.0)
        per_msg = PARAGON.message_time(128, 1)
        assert spec.seconds_per_exchange(PARAGON) == pytest.approx(2 * per_msg)
        # Unaggregated equivalent: same bytes split over 128 messages
        # pays 128 alphas instead of 1 -- strictly slower.
        split = HaloSpec(neighbors=2, sites_per_message=1.0,
                         messages_per_neighbor=128)
        assert split.seconds_per_exchange(PARAGON) > spec.seconds_per_exchange(
            PARAGON
        )

    def test_strip_halo_spec(self):
        d = StripDecomposition(64, 4)
        spec = d.halo_spec(n_slices=64)
        assert spec.neighbors == 2
        assert spec.sites_per_message == 2 * 64
        assert d.halo_spec(n_slices=64, ghost_width=1).sites_per_message == 64

    def test_strip_single_rank_has_no_halo(self):
        spec = StripDecomposition(16, 1).halo_spec(n_slices=8)
        assert spec.neighbors == 0
        assert spec.seconds_per_exchange(PARAGON) == 0.0

    def test_block_halo_spec_counts_split_axes(self):
        d = BlockDecomposition(8, 8, 4, process_grid=(2, 2))
        spec = d.halo_spec(0, n_slices=4)
        assert spec.neighbors == 4
        assert spec.sites_per_message == 4 * 4  # 4-wide planes x 4 slices

    def test_block_halo_spec_unsplit_axis(self):
        d = BlockDecomposition(8, 8, 2, process_grid=(2, 1))
        spec = d.halo_spec(0, n_slices=4)
        assert spec.neighbors == 2  # only east/west
        assert spec.sites_per_message == 8 * 4

    def test_color_packing_halves_bytes_not_messages(self):
        d = BlockDecomposition(8, 8, 4, process_grid=(2, 2))
        full = d.halo_spec(0, n_slices=4)
        packed = d.halo_spec(0, n_slices=4, color_packed=True)
        assert packed.neighbors == full.neighbors
        assert packed.sites_per_message == full.sites_per_message / 2.0

    def test_post_cost_counts_isend_and_irecv(self):
        spec = HaloSpec(neighbors=2, sites_per_message=128.0)
        assert spec.post_seconds_per_exchange(PARAGON) == pytest.approx(
            2 * 2.0 * PARAGON.post_overhead
        )
        assert spec.wire_seconds_per_message(PARAGON) == pytest.approx(
            PARAGON.message_time(128, 1)
        )


class TestOverlapPartition:
    def test_masks_are_complementary(self):
        d = StripDecomposition(32, 4)
        idx = np.arange(1, 10)
        part = d.overlap_partition("k", idx, 3, 7)
        np.testing.assert_array_equal(part.interior, ~part.boundary)
        assert part.n_interior + part.n_boundary == idx.size
        np.testing.assert_array_equal(
            idx[part.interior], np.arange(3, 8)
        )

    def test_strip_partition_cached_by_key(self):
        d = StripDecomposition(32, 4)
        idx = np.arange(2, 11)
        p1 = d.overlap_partition("col-0", idx, 3, 8)
        p2 = d.overlap_partition("col-0", idx, 3, 8)
        assert p1 is p2
        p3 = d.overlap_partition("col-1", idx, 3, 8)
        assert p3 is not p1

    def test_block_partition_trims_split_axes_only(self):
        d = BlockDecomposition(8, 8, 2, process_grid=(2, 1))
        part = d.overlap_partition(0)
        # x is split: first/last x-planes are boundary; y wraps locally.
        assert not part.interior[0].any() and not part.interior[-1].any()
        assert part.interior[1:-1].all()
        np.testing.assert_array_equal(part.interior, ~part.boundary)

    def test_block_partition_cached_per_rank(self):
        d = BlockDecomposition(8, 8, 4, process_grid=(2, 2))
        assert d.overlap_partition(1) is d.overlap_partition(1)
        assert d.overlap_partition(0) is not d.overlap_partition(1)

    def test_thin_block_is_all_boundary(self):
        d = BlockDecomposition(4, 4, 4, process_grid=(2, 2))
        part = d.overlap_partition(0)  # 2x2 block: every site on an edge
        assert part.all_boundary
        assert part.n_interior == 0
        assert part.n_boundary == 4

    def test_mismatched_masks_rejected(self):
        with pytest.raises(ValueError, match="share a shape"):
            OverlapPartition(
                interior=np.ones(3, dtype=bool),
                boundary=np.zeros(4, dtype=bool),
            )
