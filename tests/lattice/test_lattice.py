"""Tests for lattice geometry."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.lattice.lattice import Chain, SquareLattice


class TestChain:
    def test_bond_counts(self):
        assert Chain(8, periodic=True).n_bonds == 8
        assert Chain(8, periodic=False).n_bonds == 7

    def test_odd_periodic_rejected(self):
        with pytest.raises(ValueError, match="even site count"):
            Chain(7, periodic=True)

    def test_odd_open_allowed(self):
        assert Chain(7, periodic=False).n_bonds == 6

    def test_too_small_rejected(self):
        with pytest.raises(ValueError):
            Chain(1)

    def test_bond_colors_alternate_and_partition(self):
        c = Chain(8)
        bonds = c.bonds()
        for a, b, color in bonds:
            assert color == a % 2
            assert b == (a + 1) % 8
        # Each color's bonds must be site-disjoint (the breakup property).
        for color in (0, 1):
            sites = [s for a, b, c_ in bonds if c_ == color for s in (a, b)]
            assert len(sites) == len(set(sites))

    def test_bonds_of_color(self):
        c = Chain(8)
        np.testing.assert_array_equal(c.bonds_of_color(0), [0, 2, 4, 6])
        np.testing.assert_array_equal(c.bonds_of_color(1), [1, 3, 5, 7])
        with pytest.raises(ValueError):
            c.bonds_of_color(2)

    def test_neighbors_periodic_and_open(self):
        assert Chain(6).neighbors(0) == [5, 1]
        assert Chain(6, periodic=False).neighbors(0) == [1]
        assert Chain(6, periodic=False).neighbors(5) == [4]

    def test_neighbors_out_of_range(self):
        with pytest.raises(ValueError):
            Chain(6).neighbors(6)

    def test_sublattice_bipartite(self):
        c = Chain(8)
        for a, b, _ in c.bonds():
            assert c.sublattice(a) != c.sublattice(b)


class TestSquareLattice:
    def test_sites_and_bonds(self):
        lat = SquareLattice(4, 4)
        assert lat.n_sites == 16
        assert lat.n_bonds == 32  # 2 per site, periodic

    def test_open_bond_count(self):
        lat = SquareLattice(3, 4, periodic=False)
        assert lat.n_bonds == (3 - 1) * 4 + 3 * (4 - 1)

    def test_odd_periodic_rejected(self):
        with pytest.raises(ValueError):
            SquareLattice(3, 4, periodic=True)

    def test_site_coords_roundtrip(self):
        lat = SquareLattice(4, 6)
        for s in range(lat.n_sites):
            x, y = lat.coords(s)
            assert lat.site(x, y) == s

    def test_four_color_breakup_is_site_disjoint(self):
        lat = SquareLattice(4, 4)
        bonds = lat.bonds()
        for color in range(4):
            sites = [s for a, b, c in bonds if c == color for s in (a, b)]
            assert len(sites) == len(set(sites)), f"color {color} overlaps"

    def test_colors_partition_all_bonds(self):
        lat = SquareLattice(6, 4)
        bonds = lat.bonds()
        assert sum(1 for *_, c in bonds if c in (0, 1)) == lat.n_sites  # x bonds
        assert sum(1 for *_, c in bonds if c in (2, 3)) == lat.n_sites  # y bonds

    def test_neighbors_interior(self):
        lat = SquareLattice(4, 4)
        assert sorted(lat.neighbors(lat.site(1, 1))) == sorted(
            [lat.site(0, 1), lat.site(2, 1), lat.site(1, 0), lat.site(1, 2)]
        )

    def test_neighbors_unique_on_width_two(self):
        lat = SquareLattice(2, 4)
        for s in range(lat.n_sites):
            ns = lat.neighbors(s)
            assert len(ns) == len(set(ns))

    def test_sublattice_bipartite(self):
        lat = SquareLattice(4, 6)
        for a, b, _ in lat.bonds():
            assert lat.sublattice(a) != lat.sublattice(b)


@given(st.integers(2, 20).map(lambda n: 2 * n))
def test_chain_bond_colors_tile_any_even_size(n):
    c = Chain(n)
    for color in (0, 1):
        assert len(c.bonds_of_color(color)) == n // 2
