"""Shared fixtures and test-speed knobs.

Statistical tests use short runs with wide (4-5 sigma + systematic
allowance) acceptance windows: they are correctness tripwires, not
precision measurements -- the benchmarks do the precision runs.
"""

from __future__ import annotations

import numpy as np
import pytest


def pytest_addoption(parser):
    parser.addoption(
        "--no-fault",
        action="store_true",
        default=False,
        help="skip tier1_fault tests (fault injection spawns real "
        "processes and exercises wall-clock timeouts)",
    )


def pytest_collection_modifyitems(config, items):
    if not config.getoption("--no-fault"):
        return
    skip = pytest.mark.skip(reason="--no-fault given")
    for item in items:
        if "tier1_fault" in item.keywords:
            item.add_marker(skip)


@pytest.fixture
def rng() -> np.random.Generator:
    """A deterministic generator for test-local noise."""
    return np.random.default_rng(20260705)


def assert_within(value: float, reference: float, error: float,
                  n_sigma: float = 4.0, atol: float = 0.0, label: str = "") -> None:
    """Assert a stochastic estimate agrees with a reference."""
    window = n_sigma * error + atol
    assert abs(value - reference) <= window, (
        f"{label or 'estimate'} {value:.6g} vs reference {reference:.6g}: "
        f"|diff| {abs(value - reference):.3g} > window {window:.3g} "
        f"({n_sigma} sigma x {error:.3g} + {atol:.3g})"
    )


# ----------------------------------------------------------------------
# shared driver bit-identity matrix
# ----------------------------------------------------------------------
# The overlap, backend-agreement, and kernel-registry suites all assert
# the same invariant -- two runs of an SPMD sweep driver produce the
# bit-identical trajectory -- over different (P, mode, backend) axes.
# The run-and-compare loop lives here once; each suite parameterizes it
# with its own configs, seeds, and backend markers.

#: Per-rank result keys the strip world-line driver must reproduce bitwise.
STRIP_KEYS = ("energy", "magnetization", "owned_spins")
#: Per-rank result keys of the block Ising/TFIM driver.
BLOCK_KEYS = ("magnetization", "bond_sums", "block")


def run_driver_matrix(program, n_ranks, cfg, *, seed, machine=None,
                      backend="thread", checkpoint=None):
    """Run one cell of a driver bit-identity matrix.

    A thin, keyword-explicit wrapper over ``run_spmd`` so every suite
    launches driver runs identically: ``args`` is always ``(cfg,
    checkpoint)`` -- the signature shared by the strip and block
    drivers -- and the machine defaults to PARAGON, whose nonzero
    latency/bandwidth exercises the modeled-time agreement too.
    """
    from repro.vmp.machines import PARAGON
    from repro.vmp.scheduler import run_spmd

    return run_spmd(
        program,
        n_ranks,
        machine=machine if machine is not None else PARAGON,
        seed=seed,
        args=(cfg, checkpoint),
        backend=backend,
    )


def assert_bit_identical(ref, got, keys, *, accounting=False):
    """Assert two SpmdResults carry the bit-identical trajectory.

    Compares the given per-rank result ``keys`` array-exactly plus the
    attempt/accept counters.  With ``accounting=True`` also asserts the
    modeled makespan and message totals agree exactly -- the
    cross-backend agreement contract (same trajectory AND same modeled
    cost on every transport).
    """
    assert len(got.values) == len(ref.values)
    for rank, (r, g) in enumerate(zip(ref.values, got.values)):
        for key in keys:
            np.testing.assert_array_equal(
                g[key], r[key], err_msg=f"rank {rank} key {key!r}"
            )
        assert g["n_attempted"] == r["n_attempted"], f"rank {rank}"
        assert g["n_accepted"] == r["n_accepted"], f"rank {rank}"
    if accounting:
        assert got.elapsed_model_time == ref.elapsed_model_time
        assert got.total_messages == ref.total_messages
        assert got.total_bytes == ref.total_bytes
