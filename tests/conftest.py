"""Shared fixtures and test-speed knobs.

Statistical tests use short runs with wide (4-5 sigma + systematic
allowance) acceptance windows: they are correctness tripwires, not
precision measurements -- the benchmarks do the precision runs.
"""

from __future__ import annotations

import numpy as np
import pytest


def pytest_addoption(parser):
    parser.addoption(
        "--no-fault",
        action="store_true",
        default=False,
        help="skip tier1_fault tests (fault injection spawns real "
        "processes and exercises wall-clock timeouts)",
    )


def pytest_collection_modifyitems(config, items):
    if not config.getoption("--no-fault"):
        return
    skip = pytest.mark.skip(reason="--no-fault given")
    for item in items:
        if "tier1_fault" in item.keywords:
            item.add_marker(skip)


@pytest.fixture
def rng() -> np.random.Generator:
    """A deterministic generator for test-local noise."""
    return np.random.default_rng(20260705)


def assert_within(value: float, reference: float, error: float,
                  n_sigma: float = 4.0, atol: float = 0.0, label: str = "") -> None:
    """Assert a stochastic estimate agrees with a reference."""
    window = n_sigma * error + atol
    assert abs(value - reference) <= window, (
        f"{label or 'estimate'} {value:.6g} vs reference {reference:.6g}: "
        f"|diff| {abs(value - reference):.3g} > window {window:.3g} "
        f"({n_sigma} sigma x {error:.3g} + {atol:.3g})"
    )
