"""Tests for message tracing and timeline rendering."""

import numpy as np
import pytest

from repro.vmp.machines import CM5
from repro.vmp.scheduler import run_spmd
from repro.vmp.trace import render_timeline, summarize_traffic


def ring_program(comm):
    right = (comm.rank + 1) % comm.size
    left = (comm.rank - 1) % comm.size
    comm.charge_compute(25e6)  # 1s on CM-5
    return comm.sendrecv(np.zeros(128), right, left)


class TestTracing:
    def test_disabled_by_default(self):
        res = run_spmd(ring_program, 3, machine=CM5)
        assert res.trace is None
        with pytest.raises(ValueError, match="trace=True"):
            res.render_timeline()

    def test_events_recorded(self):
        res = run_spmd(ring_program, 3, machine=CM5, trace=True)
        assert res.trace is not None
        assert len(res.trace) == 3  # one send per rank
        e = res.trace[0]
        assert e.nbytes == 128 * 8
        assert e.t_arrival > e.t_send

    def test_collectives_traced_too(self):
        def prog(comm):
            comm.allreduce(1.0)

        res = run_spmd(prog, 4, machine=CM5, trace=True)
        # reduce tree + bcast tree = 2 * (P - 1) messages.
        assert len(res.trace) == 6


class TestSummarize:
    def test_aggregates(self):
        res = run_spmd(ring_program, 4, machine=CM5, trace=True)
        summary = summarize_traffic(res.trace, 4)
        assert summary["n_messages"] == 4
        assert summary["total_bytes"] == 4 * 1024
        assert summary["busiest_pair"] is not None
        assert sum(summary["pair_count"].values()) == 4

    def test_per_tag_totals(self):
        def prog(comm):
            right = (comm.rank + 1) % comm.size
            left = (comm.rank - 1) % comm.size
            comm.sendrecv(np.zeros(16), right, left, sendtag=3, recvtag=3)
            comm.sendrecv(np.zeros(64), right, left, sendtag=7, recvtag=7)

        res = run_spmd(prog, 3, machine=CM5, trace=True)
        summary = summarize_traffic(res.trace, 3)
        assert summary["tag_count"] == {3: 3, 7: 3}
        assert summary["tag_bytes"] == {3: 3 * 16 * 8, 7: 3 * 64 * 8}

    def test_comm_fraction_from_breakdowns(self):
        res = run_spmd(ring_program, 4, machine=CM5, trace=True)
        breakdowns = [o.breakdown for o in res.outcomes]
        summary = summarize_traffic(res.trace, 4, breakdowns=breakdowns)
        fractions = summary["comm_fraction"]
        assert len(fractions) == 4
        for frac, b in zip(fractions, breakdowns):
            total = sum(b.values())
            expected = (b.get("comm", 0.0) + b.get("comm_wait", 0.0)) / total
            assert frac == expected
            assert 0.0 < frac < 1.0

    def test_comm_fraction_estimated_without_breakdowns(self):
        res = run_spmd(ring_program, 4, machine=CM5, trace=True)
        fractions = summarize_traffic(res.trace, 4)["comm_fraction"]
        assert len(fractions) == 4
        assert all(0.0 < f <= 1.0 for f in fractions)

    def test_empty(self):
        summary = summarize_traffic([], 2)
        assert summary["n_messages"] == 0
        assert summary["busiest_pair"] is None
        assert summary["tag_bytes"] == {}
        assert summary["comm_fraction"] == [0.0, 0.0]


class TestRenderTimeline:
    def test_renders_rows_per_rank(self):
        res = run_spmd(ring_program, 3, machine=CM5, trace=True)
        text = res.render_timeline(width=40)
        lines = text.splitlines()
        assert len(lines) == 4  # header + 3 ranks
        assert all(f"rank {r:>3}" in lines[r + 1] for r in range(3))
        # Messages mark some cells ~ and the compute phase leaves dots.
        assert "~" in text

    def test_zero_makespan(self):
        assert "(empty timeline)" in render_timeline([], [{}], 0.0)

    def test_width_respected(self):
        res = run_spmd(ring_program, 2, machine=CM5, trace=True)
        text = res.render_timeline(width=20)
        row = text.splitlines()[1]
        assert row.count("|") == 2
        inner = row.split("|")[1]
        assert len(inner) == 20

    def test_rejects_tiny_width(self):
        with pytest.raises(ValueError, match="width"):
            render_timeline([], [{}], 1.0, width=4)

    def test_late_arrivals_extend_span_instead_of_clipping(self):
        from repro.vmp.trace import MessageEvent

        # One message arrives well past the nominal makespan; the row
        # must stretch to cover it rather than pile ~ into the last cell.
        events = [
            MessageEvent(src=0, dst=1, tag=0, nbytes=8, t_send=0.1,
                         t_arrival=4.0),
        ]
        text = render_timeline(events, [{}, {}], makespan=1.0, width=40)
        assert "4 s across 40 cells" in text
        row0 = text.splitlines()[1].split("|")[1]
        # The send starts at t=0.1 of a 4s span: cell 1 of 40, so the
        # in-flight marker must not be squashed into the final cell.
        assert row0[1] == "~"
        assert row0[0] == "."
