"""Tests for message tracing and timeline rendering."""

import numpy as np
import pytest

from repro.vmp.machines import CM5, IDEAL
from repro.vmp.scheduler import run_spmd
from repro.vmp.trace import render_timeline, summarize_traffic


def ring_program(comm):
    right = (comm.rank + 1) % comm.size
    left = (comm.rank - 1) % comm.size
    comm.charge_compute(25e6)  # 1s on CM-5
    return comm.sendrecv(np.zeros(128), right, left)


class TestTracing:
    def test_disabled_by_default(self):
        res = run_spmd(ring_program, 3, machine=CM5)
        assert res.trace is None
        with pytest.raises(ValueError, match="trace=True"):
            res.render_timeline()

    def test_events_recorded(self):
        res = run_spmd(ring_program, 3, machine=CM5, trace=True)
        assert res.trace is not None
        assert len(res.trace) == 3  # one send per rank
        e = res.trace[0]
        assert e.nbytes == 128 * 8
        assert e.t_arrival > e.t_send

    def test_collectives_traced_too(self):
        def prog(comm):
            comm.allreduce(1.0)

        res = run_spmd(prog, 4, machine=CM5, trace=True)
        # reduce tree + bcast tree = 2 * (P - 1) messages.
        assert len(res.trace) == 6


class TestSummarize:
    def test_aggregates(self):
        res = run_spmd(ring_program, 4, machine=CM5, trace=True)
        summary = summarize_traffic(res.trace, 4)
        assert summary["n_messages"] == 4
        assert summary["total_bytes"] == 4 * 1024
        assert summary["busiest_pair"] is not None
        assert sum(summary["pair_count"].values()) == 4

    def test_empty(self):
        summary = summarize_traffic([], 2)
        assert summary["n_messages"] == 0
        assert summary["busiest_pair"] is None


class TestRenderTimeline:
    def test_renders_rows_per_rank(self):
        res = run_spmd(ring_program, 3, machine=CM5, trace=True)
        text = res.render_timeline(width=40)
        lines = text.splitlines()
        assert len(lines) == 4  # header + 3 ranks
        assert all(f"rank {r:>3}" in lines[r + 1] for r in range(3))
        # Messages mark some cells ~ and the compute phase leaves dots.
        assert "~" in text

    def test_zero_makespan(self):
        assert "(empty timeline)" in render_timeline([], [{}], 0.0)

    def test_width_respected(self):
        res = run_spmd(ring_program, 2, machine=CM5, trace=True)
        text = res.render_timeline(width=20)
        row = text.splitlines()[1]
        assert row.count("|") == 2
        inner = row.split("|")[1]
        assert len(inner) == 20
