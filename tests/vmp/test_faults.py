"""Fault injection and failure recovery, on both execution backends.

The acceptance bar (ISSUE/DESIGN): killing one rank of a P=4 strip
world-line run mid-sweep must surface a structured
:class:`~repro.vmp.faults.RankFailure` naming the dead rank on every
survivor within seconds -- not after a 120 s hang.  These tests drive
that path with deterministic :class:`~repro.vmp.faults.FaultPlan`
injections (crash-at-step, message delay/drop, slow-rank stall) and
with a genuinely hard-killed process, at P=2 and P=4, on the thread
scheduler and the multiprocessing backend.

All multiprocessing tests carry the ``tier1_fault`` marker: they are
part of tier 1 but can be deselected with ``--no-fault`` on machines
where process spawning is restricted (see tests/vmp/README.md).
"""

import os
import time

import pytest

from repro.qmc.parallel import WorldlineStripConfig, worldline_strip_program
from repro.vmp.faults import (
    CrashFault,
    FaultPlan,
    InjectedRankCrash,
    MessageDelayFault,
    RankFailure,
    StallFault,
)
from repro.vmp.machines import IDEAL
from repro.vmp.process_backend import MpCommunicator, run_multiprocessing
from repro.vmp.scheduler import run_spmd

mp_fault = pytest.mark.tier1_fault


# Programs live at module scope so the multiprocessing backend can
# pickle them.
def prog_ring(comm, n_rounds=6):
    """Neighbor sendrecv ring: every rank keeps communicating."""
    total = 0.0
    right = (comm.rank + 1) % comm.size
    left = (comm.rank - 1) % comm.size
    for _ in range(n_rounds):
        total += comm.sendrecv(float(comm.rank), dest=right, source=left)
    return total


def prog_hard_kill(comm):
    """Rank 1 dies without a trace; the others wait on the ring."""
    if comm.rank == 1:
        os._exit(17)  # no exception, no poison pill: a real SIGKILL-alike
    return prog_ring(comm)


def _strip_cfg(n_sweeps=4, mode="vectorized"):
    return WorldlineStripConfig(
        n_sites=16,
        jz=1.0,
        jxy=0.8,
        beta=1.0,
        n_slices=8,
        n_sweeps=n_sweeps,
        n_thermalize=0,
        mode=mode,
    )


# ======================================================================
# plan construction and determinism
# ======================================================================


class TestFaultPlan:
    def test_seeded_plans_are_reproducible(self):
        a = FaultPlan.seeded(3, n_ranks=8, n_crashes=2, max_step=16)
        b = FaultPlan.seeded(3, n_ranks=8, n_crashes=2, max_step=16)
        assert a == b
        assert len(a.crash_ranks()) == 2
        assert FaultPlan.seeded(4, n_ranks=8, n_crashes=2, max_step=16) != a

    def test_rejects_unknown_fault_types(self):
        with pytest.raises(TypeError):
            FaultPlan(("not a fault",))

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            CrashFault(rank=0, at_step=0)
        with pytest.raises(ValueError):
            MessageDelayFault(src=0, dst=1, seconds=-1.0)
        with pytest.raises(ValueError):
            StallFault(rank=0, at_step=1, seconds=-1.0)
        with pytest.raises(ValueError):
            FaultPlan.seeded(0, n_ranks=2, n_crashes=3)


# ======================================================================
# thread scheduler
# ======================================================================


class TestThreadBackendFaults:
    @pytest.mark.parametrize("p", [2, 4])
    def test_crash_names_dead_rank_on_all_survivors(self, p):
        victim = p - 1
        plan = FaultPlan((CrashFault(rank=victim, at_step=3),))
        t0 = time.monotonic()
        with pytest.raises(InjectedRankCrash) as excinfo:
            run_spmd(prog_ring, p, IDEAL, fault_plan=plan, recv_timeout=5.0)
        elapsed = time.monotonic() - t0
        assert elapsed < 5.0, "survivors must fail fast, not wait out the timeout"
        report = excinfo.value.run_report
        assert report.failed_ranks() == [victim]
        assert report.failures[0].injected
        assert sorted(a.rank for a in report.aborted) == [
            r for r in range(p) if r != victim
        ]
        assert all(a.failed_rank == victim for a in report.aborted)

    def test_message_delay_shifts_modeled_time_only(self):
        base = run_spmd(prog_ring, 2, IDEAL)
        plan = FaultPlan((MessageDelayFault(src=0, dst=1, nth=1, seconds=0.25),))
        delayed = run_spmd(prog_ring, 2, IDEAL, fault_plan=plan)
        assert delayed.values == base.values
        assert delayed.elapsed_model_time == pytest.approx(
            base.elapsed_model_time + 0.25
        )
        assert delayed.report.ok

    def test_message_drop_times_out_with_diagnostics(self):
        plan = FaultPlan((MessageDelayFault(src=0, dst=1, nth=2, drop=True),))
        t0 = time.monotonic()
        with pytest.raises(RankFailure) as excinfo:
            run_spmd(prog_ring, 2, IDEAL, fault_plan=plan, recv_timeout=0.5)
        assert time.monotonic() - t0 < 5.0
        exc = excinfo.value
        assert exc.via == "timeout"
        assert exc.failed_rank == 0  # the receiver was waiting on rank 0
        assert "within 0.5s" in str(exc)

    def test_stall_charges_modeled_time(self):
        plan = FaultPlan((StallFault(rank=0, at_step=2, seconds=1.5),))
        res = run_spmd(prog_ring, 2, IDEAL, fault_plan=plan)
        assert res.outcomes[0].breakdown["stall"] == pytest.approx(1.5)
        assert "stall" not in res.outcomes[1].breakdown
        base = run_spmd(prog_ring, 2, IDEAL)
        assert res.values == base.values

    def test_clean_run_report_lists_all_completed(self):
        res = run_spmd(prog_ring, 4, IDEAL)
        assert res.report is not None
        assert res.report.ok
        assert res.report.completed == [0, 1, 2, 3]
        assert "all 4 ranks completed" in res.report.summary()

    @pytest.mark.parametrize("p", [2, 4])
    def test_strip_driver_crash_mid_sweep(self, p):
        # One strip sweep is 10 stages x 4 comm ops: step 13 lands in
        # the middle of the second stage of the first sweep.
        plan = FaultPlan((CrashFault(rank=0, at_step=13),))
        with pytest.raises(InjectedRankCrash) as excinfo:
            run_spmd(
                worldline_strip_program,
                p,
                IDEAL,
                args=(_strip_cfg(),),
                fault_plan=plan,
                recv_timeout=5.0,
            )
        report = excinfo.value.run_report
        assert report.failed_ranks() == [0]
        assert all(a.failed_rank == 0 for a in report.aborted)


# ======================================================================
# multiprocessing backend
# ======================================================================


@mp_fault
class TestMpBackendFaults:
    @pytest.mark.parametrize("p", [2, 4])
    def test_crash_names_dead_rank_within_timeout(self, p):
        victim = p - 1
        plan = FaultPlan((CrashFault(rank=victim, at_step=3),))
        t0 = time.monotonic()
        with pytest.raises(RankFailure) as excinfo:
            run_multiprocessing(
                prog_ring, p, IDEAL, fault_plan=plan, recv_timeout=10.0
            )
        elapsed = time.monotonic() - t0
        assert elapsed < 5.0, (
            f"poison pills must release survivors in <5s, took {elapsed:.1f}s"
        )
        exc = excinfo.value
        assert exc.failed_rank == victim
        report = exc.run_report
        assert report.failed_ranks() == [victim]
        assert report.failures[0].injected
        assert all(a.failed_rank == victim for a in report.aborted)

    def test_same_plan_same_trajectory_as_thread_backend(self):
        plan = FaultPlan((CrashFault(rank=1, at_step=5),))
        with pytest.raises(InjectedRankCrash) as th:
            run_spmd(prog_ring, 4, IDEAL, fault_plan=plan, recv_timeout=5.0)
        with pytest.raises(RankFailure) as mp_:
            run_multiprocessing(
                prog_ring, 4, IDEAL, fault_plan=plan, recv_timeout=5.0
            )
        th_report, mp_report = th.value.run_report, mp_.value.run_report
        assert th_report.failed_ranks() == mp_report.failed_ranks()
        # The victim dies at the same op count on both backends, so it
        # dies at the same modeled time.
        th_death = th_report.failures[0].model_time
        mp_death = mp_report.failures[0].model_time
        assert th_death == mp_death

    def test_message_delay_parity_with_thread_backend(self):
        plan = FaultPlan((MessageDelayFault(src=0, dst=1, nth=1, seconds=0.25),))
        th = run_spmd(prog_ring, 2, IDEAL, fault_plan=plan)
        mp_ = run_multiprocessing(prog_ring, 2, IDEAL, fault_plan=plan)
        assert mp_.values == th.values
        assert mp_.model_times == [o.model_time for o in th.outcomes]

    def test_hard_killed_process_detected_by_launcher(self):
        t0 = time.monotonic()
        with pytest.raises(RankFailure) as excinfo:
            run_multiprocessing(
                prog_hard_kill, 4, IDEAL, recv_timeout=30.0, join_timeout=30.0
            )
        elapsed = time.monotonic() - t0
        assert elapsed < 10.0, (
            f"launcher liveness monitor should beat the 30s timeout, "
            f"took {elapsed:.1f}s"
        )
        exc = excinfo.value
        assert exc.failed_rank == 1
        report = exc.run_report
        assert report.failed_ranks() == [1]
        assert "exited with code 17" in report.failures[0].error
        assert all(a.failed_rank == 1 for a in report.aborted)

    def test_strip_driver_p4_mid_sweep_kill(self):
        # Acceptance criterion: killing one rank of a P=4 strip run
        # mid-sweep surfaces RankFailure naming the dead rank on all
        # survivors in <5s.
        plan = FaultPlan((CrashFault(rank=2, at_step=13),))
        t0 = time.monotonic()
        with pytest.raises(RankFailure) as excinfo:
            run_multiprocessing(
                worldline_strip_program,
                4,
                IDEAL,
                args=(_strip_cfg(),),
                fault_plan=plan,
                recv_timeout=30.0,
            )
        elapsed = time.monotonic() - t0
        assert elapsed < 5.0, f"took {elapsed:.1f}s, acceptance bar is 5s"
        exc = excinfo.value
        assert exc.failed_rank == 2
        report = exc.run_report
        assert report.failed_ranks() == [2]
        survivors = sorted(a.rank for a in report.aborted)
        assert survivors == [0, 1, 3]
        assert all(a.failed_rank == 2 for a in report.aborted)


# ======================================================================
# MpCommunicator timeout regression (satellite bugfix)
# ======================================================================


@mp_fault
class TestMpCommunicatorTimeout:
    def _comm(self, recv_timeout):
        import multiprocessing as mp

        from repro.util.rng import SeedSequenceFactory

        ctx = mp.get_context("fork")
        inboxes = [ctx.Queue(), ctx.Queue()]
        return MpCommunicator(
            rank=0,
            size=2,
            inboxes=inboxes,
            machine=IDEAL,
            topology=IDEAL.topology(2),
            stream=SeedSequenceFactory(0).rank_stream(0),
            recv_timeout=recv_timeout,
        )

    def test_recv_timeout_is_a_constructor_parameter(self):
        # Regression: the timeout used to be a hard-coded 120 s module
        # constant; a receiver with nothing inbound must now give up
        # after the configured bound.
        comm = self._comm(recv_timeout=0.3)
        t0 = time.monotonic()
        with pytest.raises(RankFailure) as excinfo:
            comm.recv(source=1, tag=7)
        elapsed = time.monotonic() - t0
        assert 0.25 < elapsed < 5.0
        assert excinfo.value.via == "timeout"
        assert excinfo.value.failed_rank == 1

    def test_timeout_error_includes_stash_and_inbox_diagnostics(self):
        comm = self._comm(recv_timeout=0.3)
        # An unmatched message (wrong tag) must show up in the report.
        comm._inboxes[0].put((1, 99, 0.0, "stray"))
        time.sleep(0.05)  # let the queue feeder deliver
        with pytest.raises(RankFailure) as excinfo:
            comm.recv(source=1, tag=7)
        msg = str(excinfo.value)
        assert "stash holds 1 unmatched message(s)" in msg
        assert "(1, 99)" in msg
        assert "inbox qsize=" in msg

    def test_rejects_nonpositive_timeout(self):
        with pytest.raises(ValueError):
            self._comm(recv_timeout=0.0)

    def test_poison_pill_names_origin(self):
        comm = self._comm(recv_timeout=5.0)
        comm._inboxes[0].put(("__vmp_poison__", 1, "synthetic death"))
        t0 = time.monotonic()
        with pytest.raises(RankFailure) as excinfo:
            comm.recv(source=1)
        assert time.monotonic() - t0 < 2.0
        assert excinfo.value.failed_rank == 1
        assert excinfo.value.via == "poison-pill"
        assert "synthetic death" in str(excinfo.value)


# ======================================================================
# two-level (ensemble x domain) fault containment
# ======================================================================


def _two_level_cfg():
    from repro.qmc.two_level import TwoLevelConfig

    return TwoLevelConfig(
        replicas=2,
        domain_ranks=2,
        base=_strip_cfg(n_sweeps=4),
    )


class TestTwoLevelFaults:
    """Killing one replica's domain must not take down the ensemble.

    Replicas are coupled only through the leaders' ensemble
    sub-communicator, and :func:`two_level_program` tolerates a
    :class:`RankFailure` on every ensemble operation: the surviving
    replica finishes its own trajectory (degraded, unpooled) while the
    dead replica's domain surfaces the structured failure.
    """

    def test_domain_crash_is_contained_to_its_replica(self):
        from repro.qmc.two_level import two_level_program

        # Rank 2 is replica 1's leader; step 25 lands mid-first-sweep,
        # after the two split() membership exchanges.
        plan = FaultPlan((CrashFault(rank=2, at_step=25),))
        with pytest.raises(InjectedRankCrash) as excinfo:
            run_spmd(
                two_level_program, 4, IDEAL, args=(_two_level_cfg(),),
                fault_plan=plan, recv_timeout=5.0,
            )
        report = excinfo.value.run_report
        assert report.failed_ranks() == [2]
        # Replica 0's ranks run to completion: their domain traffic
        # never touches the dead replica, and the leader's ensemble
        # failure is absorbed as degraded pooling.
        assert {0, 1} <= set(report.completed)
        # Replica 1's surviving member aborts on its dead domain peer.
        assert [a.rank for a in report.aborted] == [3]
        assert all(a.failed_rank == 2 for a in report.aborted)

    def test_rank_failure_is_prefixed_with_the_replica_name(self):
        def prog(comm):
            replica = comm.rank // 2
            sub = comm.split(replica, key=comm.rank, name=f"replica{replica}")
            if comm.rank == 0:
                try:
                    sub.recv(source=1, tag=5)  # the peer never sends
                except RankFailure as exc:
                    return (str(exc), exc.via, exc.detected_by)
            return None

        res = run_spmd(prog, 4, IDEAL, recv_timeout=0.5)
        msg, via, detected_by = res.values[0]
        assert "[replica0]" in msg
        assert via == "timeout"
        assert detected_by == 0

    @mp_fault
    def test_mp_backend_names_the_dead_replica_rank(self):
        from repro.qmc.two_level import two_level_program

        plan = FaultPlan((CrashFault(rank=2, at_step=25),))
        t0 = time.monotonic()
        with pytest.raises(RankFailure) as excinfo:
            run_multiprocessing(
                two_level_program, 4, IDEAL, args=(_two_level_cfg(),),
                fault_plan=plan, recv_timeout=10.0,
            )
        assert time.monotonic() - t0 < 10.0
        exc = excinfo.value
        assert exc.failed_rank == 2
        report = exc.run_report
        assert report.failed_ranks() == [2]
        assert report.failures[0].injected
        # Every other rank either completed or aborted blaming rank 2
        # (poison pills may reach replica 0 mid-receive on this backend).
        others = set(report.completed) | {a.rank for a in report.aborted}
        assert others == {0, 1, 3}
        assert all(a.failed_rank == 2 for a in report.aborted)


def test_run_report_summary_is_informative():
    plan = FaultPlan((CrashFault(rank=1, at_step=2),))
    with pytest.raises(InjectedRankCrash) as excinfo:
        run_spmd(prog_ring, 2, IDEAL, fault_plan=plan, recv_timeout=2.0)
    text = excinfo.value.run_report.summary()
    assert "rank 1 died (injected)" in text
    assert "aborted" in text


def test_seeded_plan_crashes_chosen_rank_on_both_backends():
    plan = FaultPlan.seeded(11, n_ranks=4, n_crashes=1, max_step=8)
    (victim,) = plan.crash_ranks()
    with pytest.raises(InjectedRankCrash) as excinfo:
        run_spmd(prog_ring, 4, IDEAL, fault_plan=plan, recv_timeout=5.0)
    assert excinfo.value.run_report.failed_ranks() == [victim]
