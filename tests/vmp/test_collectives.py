"""Tests for the collective operations, at several rank counts."""

import numpy as np
import pytest

from repro.vmp.collectives import allreduce_recursive_doubling
from repro.vmp.comm import ReduceOp
from repro.vmp.machines import CM5, IDEAL
from repro.vmp.scheduler import run_spmd

RANK_COUNTS = [1, 2, 3, 4, 5, 8]


@pytest.mark.parametrize("p", RANK_COUNTS)
class TestCollectivesAllSizes:
    def test_barrier_completes(self, p):
        def prog(comm):
            comm.barrier()
            return True

        assert all(run_spmd(prog, p, machine=IDEAL).values)

    def test_bcast_from_every_root(self, p):
        def prog(comm):
            out = []
            for root in range(comm.size):
                obj = {"root": root} if comm.rank == root else None
                out.append(comm.bcast(obj, root=root))
            return out

        res = run_spmd(prog, p, machine=IDEAL)
        for vals in res.values:
            assert vals == [{"root": r} for r in range(p)]

    def test_reduce_sum_to_root(self, p):
        def prog(comm):
            return comm.reduce(comm.rank + 1, ReduceOp.SUM, root=0)

        res = run_spmd(prog, p, machine=IDEAL)
        assert res.values[0] == p * (p + 1) // 2
        assert all(v is None for v in res.values[1:])

    def test_allreduce_ops(self, p):
        def prog(comm):
            return (
                comm.allreduce(float(comm.rank), ReduceOp.SUM),
                comm.allreduce(comm.rank, ReduceOp.MAX),
                comm.allreduce(comm.rank, ReduceOp.MIN),
            )

        res = run_spmd(prog, p, machine=IDEAL)
        for s, mx, mn in res.values:
            assert s == sum(range(p))
            assert mx == p - 1
            assert mn == 0

    def test_allreduce_arrays(self, p):
        def prog(comm):
            return comm.allreduce(np.full(3, float(comm.rank)))

        res = run_spmd(prog, p, machine=IDEAL)
        for v in res.values:
            np.testing.assert_allclose(v, sum(range(p)))

    def test_gather_in_rank_order(self, p):
        def prog(comm):
            return comm.gather(f"r{comm.rank}", root=0)

        res = run_spmd(prog, p, machine=IDEAL)
        assert res.values[0] == [f"r{r}" for r in range(p)]

    def test_allgather(self, p):
        def prog(comm):
            return comm.allgather(comm.rank * 10)

        res = run_spmd(prog, p, machine=IDEAL)
        for v in res.values:
            assert v == [r * 10 for r in range(p)]

    def test_scatter(self, p):
        def prog(comm):
            values = [f"item{r}" for r in range(comm.size)] if comm.rank == 0 else None
            return comm.scatter(values, root=0)

        res = run_spmd(prog, p, machine=IDEAL)
        assert res.values == [f"item{r}" for r in range(p)]

    def test_alltoall(self, p):
        def prog(comm):
            return comm.alltoall([(comm.rank, dst) for dst in range(comm.size)])

        res = run_spmd(prog, p, machine=IDEAL)
        for r, v in enumerate(res.values):
            assert v == [(src, r) for src in range(p)]


class TestAllreduceDeterminism:
    def test_identical_float_result_on_all_ranks(self):
        # reduce+bcast guarantees bitwise identity across ranks.
        def prog(comm):
            x = (comm.rank + 1) * 0.1  # not exactly representable
            return comm.allreduce(x)

        res = run_spmd(prog, 7, machine=IDEAL)
        assert len({v.hex() for v in res.values}) == 1

    def test_recursive_doubling_matches_sum(self):
        def prog(comm):
            from repro.vmp import collectives

            return collectives.allreduce_recursive_doubling(comm, comm.rank + 1)

        res = run_spmd(prog, 8, machine=IDEAL)
        assert all(v == 36 for v in res.values)

    def test_recursive_doubling_rejects_non_power_of_two(self):
        def prog(comm):
            return allreduce_recursive_doubling(comm, 1.0)

        with pytest.raises(ValueError, match="power-of-two"):
            run_spmd(prog, 6, machine=IDEAL)


class TestCollectiveCosts:
    def test_allreduce_cost_scales_logarithmically(self):
        def prog(comm):
            comm.allreduce(1.0)
            return comm.clock.now

        t8 = max(run_spmd(prog, 8, machine=CM5).values)
        t64 = max(run_spmd(prog, 64, machine=CM5).values)
        # 2*log2(P) rounds: doubling log P should roughly double the cost,
        # definitely not scale linearly with P.
        assert t64 < 4 * t8
        assert t64 > t8

    def test_allgather_cost_scales_linearly(self):
        def prog(comm):
            comm.allgather(np.zeros(64))
            return comm.clock.now

        t4 = max(run_spmd(prog, 4, machine=CM5).values)
        t16 = max(run_spmd(prog, 16, machine=CM5).values)
        assert t16 > 2.5 * t4  # (P-1) neighbor steps

    def test_barrier_synchronizes_clocks(self):
        def prog(comm):
            if comm.rank == 0:
                comm.charge_compute(250e6)  # 10 s on CM-5
            comm.barrier()
            return comm.clock.now

        res = run_spmd(prog, 4, machine=CM5)
        # After the barrier every clock is at least the slowest entrant.
        assert min(res.values) >= 10.0

    def test_scatter_mismatch_rejected(self):
        def prog(comm):
            vals = [1] if comm.rank == 0 else None
            return comm.scatter(vals, root=0)

        with pytest.raises(ValueError):
            run_spmd(prog, 3, machine=IDEAL)

    def test_alltoall_length_mismatch_rejected(self):
        def prog(comm):
            return comm.alltoall([0])

        with pytest.raises(ValueError):
            run_spmd(prog, 3, machine=IDEAL)
