"""Tests for the real-process (multiprocessing) backend.

These prove the same SPMD program objects run with genuinely disjoint
address spaces.  Kept small (P <= 4) -- the container has 2 cores.
"""

import numpy as np
import pytest

from repro.vmp.machines import IDEAL
from repro.vmp.process_backend import run_multiprocessing
from repro.vmp.scheduler import run_spmd


# Programs must live at module scope to be picklable.
def prog_allreduce(comm):
    return comm.allreduce(float(comm.rank + 1))


def prog_pingpong(comm):
    if comm.rank == 0:
        comm.send(np.arange(4.0), 1, tag=1)
        return comm.recv(source=1, tag=2).tolist()
    x = comm.recv(source=0, tag=1)
    comm.send(x * 3, 0, tag=2)
    return None


def prog_gather_streams(comm):
    draw = comm.stream.uniform(size=2).tolist()
    return comm.gather(draw, root=0)


def prog_barrier_then_rank(comm):
    comm.barrier()
    return comm.rank


def prog_crash(comm):
    # Rank 0 finishes independently; rank 1 dies.  (Peers blocked on a
    # dead partner are only released by the 120 s receive timeout in
    # this backend, so the crash test avoids communication.)
    if comm.rank == 1:
        raise RuntimeError("process died")
    return comm.rank


class TestProcessBackend:
    def test_allreduce(self):
        values = run_multiprocessing(prog_allreduce, 3, machine=IDEAL)
        assert values == [6.0, 6.0, 6.0]

    def test_pointwise_exchange(self):
        values = run_multiprocessing(prog_pingpong, 2, machine=IDEAL)
        assert values[0] == [0.0, 3.0, 6.0, 9.0]

    def test_barrier(self):
        assert run_multiprocessing(prog_barrier_then_rank, 4, machine=IDEAL) == [
            0, 1, 2, 3
        ]

    def test_rank_streams_match_thread_backend(self):
        # Same seed => identical random draws under both backends: the
        # stream derivation is backend-independent by construction.
        mp_values = run_multiprocessing(prog_gather_streams, 2, machine=IDEAL, seed=9)
        th_values = run_spmd(prog_gather_streams, 2, machine=IDEAL, seed=9).values
        assert mp_values[0] == th_values[0]

    def test_failure_propagates(self):
        with pytest.raises(RuntimeError, match="process died"):
            run_multiprocessing(prog_crash, 2, machine=IDEAL)

    def test_zero_ranks_rejected(self):
        with pytest.raises(ValueError):
            run_multiprocessing(prog_allreduce, 0)
