"""Tests for the real-process (multiprocessing) backend.

These prove the same SPMD program objects run with genuinely disjoint
address spaces.  Kept small (P <= 4) -- the container has 2 cores.
"""

import numpy as np
import pytest

from repro.vmp.comm import ANY_TAG
from repro.vmp.machines import IDEAL
from repro.vmp.process_backend import run_multiprocessing
from repro.vmp.scheduler import run_spmd


# Programs must live at module scope to be picklable.
def prog_allreduce(comm):
    return comm.allreduce(float(comm.rank + 1))


def prog_pingpong(comm):
    if comm.rank == 0:
        comm.send(np.arange(4.0), 1, tag=1)
        return comm.recv(source=1, tag=2).tolist()
    x = comm.recv(source=0, tag=1)
    comm.send(x * 3, 0, tag=2)
    return None


def prog_gather_streams(comm):
    draw = comm.stream.uniform(size=2).tolist()
    return comm.gather(draw, root=0)


def prog_barrier_then_rank(comm):
    comm.barrier()
    return comm.rank


def prog_large_halo(comm):
    # Halo-sized ndarray through the queue fast path (1 MB int8).
    if comm.rank == 0:
        arr = np.arange(1_000_000, dtype=np.int8).reshape(1000, 1000)
        comm.send(arr, 1, tag=3)
        return float(comm.recv(source=1, tag=4))
    got = comm.recv(source=0, tag=3)
    ok = (
        got.shape == (1000, 1000)
        and got.dtype == np.int8
        and got.flags.writeable
        and got.flags.c_contiguous
    )
    got[0, 0] = 1  # must be mutable without touching the sender
    comm.send(float(got.sum()) if ok else float("nan"), 0, tag=4)
    return None


def prog_noncontiguous(comm):
    # Strided views must arrive with the right *values*.
    if comm.rank == 0:
        base = np.arange(64, dtype=np.float64).reshape(8, 8)
        comm.send(base[::2, 1::3], 1, tag=5)
        return None
    got = comm.recv(source=0, tag=5)
    return got.tolist()


def prog_mixed_payload(comm):
    # Containers of arrays take the same buffer fast path.
    if comm.rank == 0:
        payload = {
            "planes": (np.ones((4, 6), dtype=np.int8), np.zeros(3)),
            "tag": 7,
        }
        comm.send(payload, 1, tag=6)
        return None
    got = comm.recv(source=0, tag=6)
    return (
        got["planes"][0].sum() == 24
        and got["planes"][0].dtype == np.int8
        and np.all(got["planes"][1] == 0.0)
        and got["tag"] == 7
    )


def prog_halo_ring(comm):
    # Every rank posts its send before any recv: the eager/buffered
    # protocol must be deadlock-free at P=8 with halo-sized payloads.
    t_slices = 2048
    buf = np.full((2, t_slices), comm.rank, dtype=np.int8)
    right = (comm.rank + 1) % comm.size
    left = (comm.rank - 1) % comm.size
    got = comm.sendrecv(buf, right, source=left, sendtag=11, recvtag=11)
    return (int(got[0, 0]), got.shape, str(got.dtype))


def prog_stash_bounded(comm):
    # Regression for the keyed stash: it must hold exactly the messages
    # that arrived but were not yet matched, and drop its per-key deques
    # once they drain (growth stays O(outstanding), not O(delivered)).
    n = 24
    if comm.rank == 0:
        for i in range(n):
            comm.send(i, 1, tag=i)        # phase 1: specific matches
        for i in range(n):
            comm.send(i, 1, tag=100 + i)  # phase 2: wildcard matches
        return comm.recv(source=1, tag=999)
    # Phase 1: receive in *reverse* tag order.  The inbox is FIFO, so
    # matching the last-sent tag first stashes the n-1 earlier messages,
    # and each subsequent recv pops one straight from the stash.
    values, trajectory = [], []
    for tag in reversed(range(n)):
        values.append(comm.recv(source=0, tag=tag))
        trajectory.append(comm.stash_size())
    # Phase 2: pile the stash up again, then drain it with wildcard
    # receives -- those must stay FIFO by arrival across distinct keys.
    last = comm.recv(source=0, tag=100 + n - 1)
    wild = [comm.recv(source=0, tag=ANY_TAG) for _ in range(n - 1)]
    ok = (
        values == list(reversed(range(n)))
        and trajectory == list(range(n - 1, -1, -1))
        and last == n - 1
        and wild == list(range(n - 1))
        and comm.stash_size() == 0
        and len(comm._stash) == 0  # drained deques are deleted, not leaked
    )
    comm.send(ok, 0, tag=999)
    return trajectory


def prog_crash(comm):
    # Rank 0 finishes independently; rank 1 dies.  Peers blocked on a
    # dead partner are released by its poison pill (see test_faults.py
    # for the communicating-crash cases).
    if comm.rank == 1:
        raise RuntimeError("process died")
    return comm.rank


class TestProcessBackend:
    def test_allreduce(self):
        result = run_multiprocessing(prog_allreduce, 3, machine=IDEAL)
        assert result.values == [6.0, 6.0, 6.0]
        assert result.report.ok
        assert result.report.completed == [0, 1, 2]

    def test_pointwise_exchange(self):
        values = run_multiprocessing(prog_pingpong, 2, machine=IDEAL).values
        assert values[0] == [0.0, 3.0, 6.0, 9.0]

    def test_barrier(self):
        assert run_multiprocessing(prog_barrier_then_rank, 4, machine=IDEAL).values == [
            0, 1, 2, 3
        ]

    def test_rank_streams_match_thread_backend(self):
        # Same seed => identical random draws under both backends: the
        # stream derivation is backend-independent by construction.
        mp_values = run_multiprocessing(prog_gather_streams, 2, machine=IDEAL, seed=9).values
        th_values = run_spmd(prog_gather_streams, 2, machine=IDEAL, seed=9).values
        assert mp_values[0] == th_values[0]

    def test_large_ndarray_payload(self):
        values = run_multiprocessing(prog_large_halo, 2, machine=IDEAL).values
        # arange int8 wraps mod 256: sum of 1e6 wrapped values + the mutation.
        expected = float(
            np.arange(1_000_000, dtype=np.int8).sum(dtype=np.int64) + 1
        )
        assert values[0] == expected

    def test_noncontiguous_array_values_survive(self):
        values = run_multiprocessing(prog_noncontiguous, 2, machine=IDEAL).values
        base = np.arange(64, dtype=np.float64).reshape(8, 8)
        assert values[1] == base[::2, 1::3].tolist()

    def test_mixed_container_payload(self):
        values = run_multiprocessing(prog_mixed_payload, 2, machine=IDEAL).values
        assert values[1] is True

    def test_sendrecv_ring_deadlock_free_at_p8(self):
        values = run_multiprocessing(prog_halo_ring, 8, machine=IDEAL).values
        for rank, (src, shape, dtype) in enumerate(values):
            assert src == (rank - 1) % 8
            assert shape == (2, 2048)
            assert dtype == "int8"

    def test_stash_stays_bounded_by_outstanding_messages(self):
        result = run_multiprocessing(prog_stash_bounded, 2, machine=IDEAL)
        assert result.values[0] is True  # rank 1's in-process assertions
        assert result.values[1] == list(range(23, -1, -1))

    def test_failure_propagates(self):
        with pytest.raises(RuntimeError, match="process died"):
            run_multiprocessing(prog_crash, 2, machine=IDEAL)

    def test_zero_ranks_rejected(self):
        with pytest.raises(ValueError):
            run_multiprocessing(prog_allreduce, 0)
