"""Request (isend/irecv handle) semantics, identical on every backend.

The contract pinned here (see the comm-module docstring): a *send*
request is complete the moment ``isend`` returns -- every backend
buffers eagerly, there is no rendezvous -- and a *receive* request
completes when a matching message is collected, charging modeled
latency/wait exactly once no matter how often ``test``/``wait`` are
called.  The programs are module-level so the mp and mpi backends can
pickle them; the mpi leg skips without mpi4py + mpiexec.
"""

import numpy as np
import pytest

from repro.vmp.machines import IDEAL, PARAGON
from repro.vmp.mpi_backend import mpi_available, mpiexec_available
from repro.vmp.scheduler import run_spmd

BACKENDS_UNDER_TEST = ["thread", "mp"] + (
    ["mpi"] if mpi_available() and mpiexec_available() else []
)

backends = pytest.mark.parametrize("backend", BACKENDS_UNDER_TEST)


def _send_completes_on_return(comm):
    if comm.rank == 0:
        req = comm.isend(np.arange(6.0), 1, tag=4)
        done_immediately = req.test()
        req.wait()  # wait after test must be a no-op, not an error
        comm.recv(source=1, tag=5)
        return done_immediately
    got = comm.recv(source=0, tag=4)
    comm.send("ack", 0, tag=5)
    return float(got.sum())


def _recv_not_done_until_sent(comm):
    if comm.rank == 0:
        req = comm.irecv(source=1, tag=9)
        # Rank 1 blocks for our go-message before sending, so the
        # request cannot have completed yet on any backend.
        early = req.test()
        comm.send("go", 1, tag=8)
        value = req.wait()
        again = req.wait()  # idempotent: same payload, no extra charge
        clock_after_first = comm.clock.now
        assert comm.clock.now == clock_after_first
        return {"early": early, "value": value, "again": again}
    comm.recv(source=0, tag=8)
    comm.send("payload", 0, tag=9)
    return None


def _wait_charges_once(comm):
    nxt, prv = (comm.rank + 1) % comm.size, (comm.rank - 1) % comm.size
    req = comm.irecv(source=prv, tag=2)
    comm.isend(np.full(16, float(comm.rank)), nxt, tag=2)
    req.wait()
    req.test()  # post-completion probes must not touch the clock
    req.wait()
    return comm.clock.now


@backends
def test_send_request_complete_on_return(backend):
    res = run_spmd(_send_completes_on_return, 2, machine=IDEAL, backend=backend)
    assert res.values[0] is True
    assert res.values[1] == 15.0


@backends
def test_recv_request_lifecycle(backend):
    res = run_spmd(_recv_not_done_until_sent, 2, machine=IDEAL, backend=backend)
    out = res.values[0]
    assert out["early"] is False
    assert out["value"] == "payload"
    assert out["again"] == "payload"


@backends
def test_completed_requests_charge_the_clock_once(backend):
    res = run_spmd(_wait_charges_once, 2, machine=PARAGON, backend=backend)
    thread = run_spmd(_wait_charges_once, 2, machine=PARAGON, backend="thread")
    assert res.values == thread.values
