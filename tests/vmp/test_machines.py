"""Tests for machine cost models."""

import pytest

from repro.vmp.machines import CM5, DELTA, IDEAL, MACHINES, NCUBE2, PARAGON


class TestCostFormulas:
    def test_compute_time(self):
        assert CM5.compute_time(25e6) == pytest.approx(1.0)
        assert IDEAL.compute_time(0.0) == 0.0

    def test_negative_flops_rejected(self):
        with pytest.raises(ValueError):
            CM5.compute_time(-1)

    def test_message_time_structure(self):
        # alpha + hops * hop + n * beta, monotone in both n and hops.
        t_small = PARAGON.message_time(8, hops=1)
        t_big = PARAGON.message_time(8192, hops=1)
        t_far = PARAGON.message_time(8, hops=20)
        assert t_small > PARAGON.latency
        assert t_big > t_small
        assert t_far > t_small

    def test_latency_dominates_small_messages(self):
        t = CM5.message_time(8, hops=1)
        assert t == pytest.approx(CM5.latency, rel=0.1)

    def test_bandwidth_dominates_large_messages(self):
        n = 10_000_000
        t = CM5.message_time(n, hops=1)
        assert t == pytest.approx(n * CM5.byte_time, rel=0.1)

    def test_ideal_machine_has_free_messages(self):
        assert IDEAL.message_time(1 << 20, hops=100) == 0.0

    def test_invalid_args_rejected(self):
        with pytest.raises(ValueError):
            CM5.message_time(-1)
        with pytest.raises(ValueError):
            CM5.message_time(8, hops=-1)


class TestMachineRoster:
    def test_all_registered(self):
        assert set(MACHINES) == {"CM-5", "Paragon", "Delta", "nCUBE-2", "Ideal"}

    def test_native_topologies_instantiate(self):
        assert CM5.topology(64).size == 64
        assert PARAGON.topology(100).size == 100
        assert NCUBE2.topology(128).size == 128
        assert DELTA.topology(16).size == 16

    def test_relative_node_speeds_are_era_faithful(self):
        # CM-5 vector nodes > Paragon i860 > Delta > nCUBE-2.
        assert CM5.flops > PARAGON.flops > DELTA.flops > NCUBE2.flops

    def test_paragon_network_faster_than_ncube(self):
        n = 4096
        assert PARAGON.message_time(n) < NCUBE2.message_time(n)

    def test_with_overrides(self):
        fast = NCUBE2.with_overrides(latency=0.0)
        assert fast.latency == 0.0
        assert fast.flops == NCUBE2.flops
        assert NCUBE2.latency > 0  # original untouched (frozen dataclass)
