"""Tests and metric properties for interconnect topologies."""

import networkx as nx
import pytest
from hypothesis import given, settings, strategies as st

from repro.vmp.topology import (
    Crossbar,
    FatTree,
    Hypercube,
    Mesh2D,
    Mesh3D,
    Ring,
    topology_for,
)


def as_graph(topo):
    """Build the explicit adjacency graph from neighbors()."""
    g = nx.Graph()
    g.add_nodes_from(range(topo.size))
    for r in range(topo.size):
        for n in topo.neighbors(r):
            g.add_edge(r, n)
    return g


class TestHypercube:
    def test_size_must_be_power_of_two(self):
        with pytest.raises(ValueError):
            Hypercube(12)

    def test_hops_is_hamming_distance(self):
        h = Hypercube(16)
        assert h.hops(0b0000, 0b1011) == 3
        assert h.hops(5, 5) == 0

    def test_neighbors_count_equals_dimension(self):
        h = Hypercube(32)
        assert len(h.neighbors(7)) == 5

    def test_diameter_and_bisection(self):
        h = Hypercube(64)
        assert h.diameter == 6
        assert h.bisection_width == 32

    def test_hops_matches_graph_distance(self):
        h = Hypercube(16)
        g = as_graph(h)
        for s in range(16):
            lengths = nx.single_source_shortest_path_length(g, s)
            for d in range(16):
                assert h.hops(s, d) == lengths[d]


class TestRing:
    def test_wraparound_distance(self):
        r = Ring(10)
        assert r.hops(0, 9) == 1
        assert r.hops(0, 5) == 5

    def test_two_node_ring(self):
        r = Ring(2)
        assert r.neighbors(0) == [1]
        assert r.hops(0, 1) == 1

    def test_single_node(self):
        r = Ring(1)
        assert r.neighbors(0) == []
        assert r.diameter == 0


class TestMesh2D:
    def test_square_for_factorization(self):
        m = Mesh2D.square_for(12)
        assert m.nx * m.ny == 12
        assert m.nx <= m.ny

    def test_mesh_vs_torus_distance(self):
        mesh = Mesh2D(4, 4, torus=False)
        torus = Mesh2D(4, 4, torus=True)
        a, b = mesh.rank_of(0, 0), mesh.rank_of(3, 3)
        assert mesh.hops(a, b) == 6
        assert torus.hops(a, b) == 2

    def test_neighbors_interior_and_edge(self):
        mesh = Mesh2D(3, 3, torus=False)
        center = mesh.rank_of(1, 1)
        corner = mesh.rank_of(0, 0)
        assert len(mesh.neighbors(center)) == 4
        assert len(mesh.neighbors(corner)) == 2

    def test_torus_neighbors_unique(self):
        t = Mesh2D(2, 4, torus=True)
        for r in range(t.size):
            ns = t.neighbors(r)
            assert len(ns) == len(set(ns))
            assert r not in ns

    def test_hops_matches_graph_distance_torus(self):
        t = Mesh2D(4, 4, torus=True)
        g = as_graph(t)
        for s in range(0, 16, 3):
            lengths = nx.single_source_shortest_path_length(g, s)
            for d in range(16):
                assert t.hops(s, d) == lengths[d]

    def test_bisection(self):
        assert Mesh2D(4, 8).bisection_width == 4
        assert Mesh2D(4, 8, torus=True).bisection_width == 8


class TestMesh3D:
    def test_coords_roundtrip(self):
        m = Mesh3D(3, 4, 5)
        for r in (0, 17, 59):
            x, y, z = m.coords(r)
            assert (x * 4 + y) * 5 + z == r

    def test_hops_manhattan(self):
        m = Mesh3D(4, 4, 4)
        assert m.hops(0, m.size - 1) == 9

    def test_torus_wrap(self):
        m = Mesh3D(4, 4, 4, torus=True)
        assert m.hops(0, m.size - 1) == 3

    def test_neighbor_count_interior(self):
        m = Mesh3D(4, 4, 4, torus=True)
        assert len(m.neighbors(21)) == 6


class TestFatTree:
    def test_sibling_distance(self):
        f = FatTree(16, arity=4)
        assert f.hops(0, 1) == 2  # same first-level switch
        assert f.hops(0, 4) == 4  # one level up

    def test_self_distance_zero(self):
        assert FatTree(16).hops(3, 3) == 0

    def test_full_bisection(self):
        f = FatTree(64, arity=4)
        assert f.bisection_width == 32

    def test_diameter_logarithmic(self):
        f = FatTree(256, arity=4)
        assert f.diameter == 2 * f.height == 8


class TestCrossbar:
    def test_all_pairs_one_hop(self):
        c = Crossbar(5)
        assert c.hops(0, 4) == 1
        assert c.hops(2, 2) == 0
        assert len(c.neighbors(0)) == 4


class TestFactory:
    @pytest.mark.parametrize(
        "name,size",
        [("hypercube", 16), ("ring", 7), ("mesh2d", 12), ("torus2d", 16),
         ("fattree", 32), ("crossbar", 9)],
    )
    def test_factory_builds(self, name, size):
        topo = topology_for(name, size)
        assert topo.size == size

    def test_unknown_name(self):
        with pytest.raises(ValueError, match="unknown topology"):
            topology_for("moebius", 8)


# -- metric properties over all topologies -----------------------------------

topo_strategy = st.sampled_from(
    [
        Hypercube(16),
        Ring(9),
        Mesh2D(4, 4, torus=False),
        Mesh2D(4, 4, torus=True),
        Mesh3D(2, 3, 4),
        FatTree(16, arity=4),
        Crossbar(11),
    ]
)


@settings(max_examples=60, deadline=None)
@given(topo_strategy, st.data())
def test_hops_is_a_metric(topo, data):
    """Symmetry, identity, triangle inequality, diameter bound."""
    a = data.draw(st.integers(0, topo.size - 1))
    b = data.draw(st.integers(0, topo.size - 1))
    c = data.draw(st.integers(0, topo.size - 1))
    assert topo.hops(a, b) == topo.hops(b, a)
    assert (topo.hops(a, b) == 0) == (a == b)
    assert topo.hops(a, c) <= topo.hops(a, b) + topo.hops(b, c)
    assert topo.hops(a, b) <= topo.diameter


@settings(max_examples=30, deadline=None)
@given(topo_strategy, st.data())
def test_neighbors_are_at_minimal_distance(topo, data):
    # On link topologies neighbors are 1 hop away; on the fat-tree the
    # metric counts switch traversals, so leaf "neighbors" sit at the
    # minimal positive distance (2).  The invariant that holds for all:
    # neighbors realize the minimum over all other ranks.
    r = data.draw(st.integers(0, topo.size - 1))
    neighbors = topo.neighbors(r)
    if not neighbors:
        return
    minimal = min(topo.hops(r, d) for d in range(topo.size) if d != r)
    for n in neighbors:
        assert topo.hops(r, n) == minimal
