"""Tests for the closed-form performance model."""

import pytest

from repro.lattice.decomposition import StripDecomposition
from repro.vmp.machines import CM5, IDEAL, NCUBE2, PARAGON
from repro.vmp.performance import (
    PerformanceModel,
    WorkloadShape,
    efficiency,
    gustafson_scaled_speedup,
    speedup,
)


def workload(**over):
    base = dict(
        lx=64, ly=64, lt=32, flops_per_site=50.0, sweeps=200, strategy="strip"
    )
    base.update(over)
    return WorkloadShape(**base)


class TestHelpers:
    def test_speedup_and_efficiency(self):
        assert speedup(10.0, 2.0) == 5.0
        assert efficiency(10.0, 2.0, 10) == 0.5
        with pytest.raises(ValueError):
            speedup(1.0, 0.0)

    def test_gustafson(self):
        assert gustafson_scaled_speedup(0.0, 64) == 64
        assert gustafson_scaled_speedup(1.0, 64) == 1
        assert gustafson_scaled_speedup(0.1, 10) == pytest.approx(9.1)
        with pytest.raises(ValueError):
            gustafson_scaled_speedup(1.5, 4)


class TestWorkloadShape:
    def test_validation(self):
        with pytest.raises(ValueError):
            workload(strategy="diagonal")
        with pytest.raises(ValueError):
            workload(sweeps=0)
        with pytest.raises(ValueError):
            workload(lx=0)

    def test_sites_and_flops(self):
        w = workload()
        assert w.sites == 64 * 64 * 32
        assert w.total_flops == w.sites * 50.0 * 200

    def test_scaled_to_grows_x(self):
        w = workload().scaled_to(4)
        assert w.lx == 256
        assert w.ly == 64


class TestPerformanceModel:
    def test_ideal_machine_scales_perfectly(self):
        pm = PerformanceModel(IDEAL, workload())
        for p in (1, 4, 16, 64):
            assert pm.speedup(p) == pytest.approx(p, rel=0.02)

    def test_single_node_has_no_comm(self):
        pm = PerformanceModel(PARAGON, workload())
        assert pm.comm_fraction(1) == 0.0
        assert pm.halo_seconds_per_sweep(1) == 0.0

    def test_efficiency_decreases_with_p(self):
        pm = PerformanceModel(PARAGON, workload())
        effs = [pm.efficiency(p) for p in (1, 4, 16, 64)]
        assert all(a >= b for a, b in zip(effs, effs[1:]))
        assert effs[0] == pytest.approx(1.0)

    def test_comm_fraction_increases_with_p(self):
        pm = PerformanceModel(PARAGON, workload())
        fracs = [pm.comm_fraction(p) for p in (2, 8, 32)]
        assert fracs[0] < fracs[1] < fracs[2] < 1.0

    def test_scaled_speedup_beats_fixed_size(self):
        pm = PerformanceModel(NCUBE2, workload())
        p = 32
        assert pm.scaled_speedup(p) > pm.speedup(p)

    def test_strip_limited_by_columns(self):
        pm = PerformanceModel(PARAGON, workload(lx=16))
        with pytest.raises(ValueError, match="strip decomposition needs"):
            pm.time(32)

    def test_block_beats_strip_at_large_p(self):
        # Block halos shrink like 1/sqrt(P) per rank; strip halos are
        # constant.  At large P on a big lattice block must win.
        strip = PerformanceModel(PARAGON, workload(strategy="strip"))
        block = PerformanceModel(PARAGON, workload(strategy="block"))
        p = 64
        assert block.time(p) < strip.time(p)

    def test_replica_has_no_halo_cost(self):
        pm = PerformanceModel(PARAGON, workload(strategy="replica"))
        assert pm.halo_seconds_per_sweep(16) == 0.0

    def test_replica_amdahl_limit(self):
        # With 10% serial fraction the replica speedup saturates near 10.
        pm = PerformanceModel(
            PARAGON, workload(strategy="replica", serial_fraction=0.1, sweeps=512)
        )
        assert pm.speedup(256) < 11.0
        assert pm.speedup(256) > 5.0

    def test_updates_per_second_grows_with_p(self):
        pm = PerformanceModel(CM5, workload())
        assert pm.updates_per_second(16) > 8 * pm.updates_per_second(1)

    def test_invalid_p_rejected(self):
        with pytest.raises(ValueError):
            PerformanceModel(CM5, workload()).time(0)


class TestMachineComparisonShape:
    def test_cm5_fastest_at_moderate_p(self):
        w = workload()
        p = 16
        times = {
            m.name: PerformanceModel(m, w).time(p) for m in (CM5, PARAGON, NCUBE2)
        }
        # CM-5 nodes are ~2.5x Paragon and ~10x nCUBE-2: per-node flops
        # dominate at moderate P on this halo-light workload.
        assert times["CM-5"] < times["Paragon"] < times["nCUBE-2"]

    def test_efficiency_at_scale_is_era_plausible(self):
        # Genre expectation: ~50-95% efficiency at P=256 for a big lattice.
        w = WorkloadShape(lx=256, ly=256, lt=64, flops_per_site=50.0,
                          sweeps=100, strategy="block")
        pm = PerformanceModel(CM5, w)
        eff = pm.efficiency(256)
        assert 0.5 < eff < 0.99


class TestWorldline2DWorkload:
    def test_flop_accounting_matches_executed_driver(self):
        from repro.models.hamiltonians import XXZSquareModel
        from repro.qmc.parallel import worldline2d_replica_flops_per_sweep
        from repro.qmc.worldline2d import WorldlineSquareQmc
        from repro.vmp.performance import worldline2d_workload

        w = worldline2d_workload(8, 8, 32, sweeps=10)
        sampler = WorldlineSquareQmc(XXZSquareModel(8, 8), 1.0, 32)
        per_sweep = worldline2d_replica_flops_per_sweep(sampler)
        assert w.total_flops == pytest.approx(10 * per_sweep)

    def test_defaults_and_overrides(self):
        from repro.vmp.performance import worldline2d_workload

        w = worldline2d_workload(16, 16, 64, sweeps=100)
        assert w.strategy == "replica"
        assert w.lt == 64
        assert worldline2d_workload(
            16, 16, 64, sweeps=100, strategy="strip"
        ).strategy == "strip"


class TestWorldlineStripWorkload:
    def test_mirrors_executed_stage_structure(self):
        from repro.qmc.parallel import N_WL_STAGES
        from repro.vmp.performance import worldline_strip_workload

        w = worldline_strip_workload(64, 64, sweeps=100)
        assert w.strategy == "strip"
        assert w.bytes_per_site == 1  # int8 spins on the wire
        assert w.halo_messages_per_sweep == 2 * N_WL_STAGES
        assert w.halo_sites_per_message == 2.0 * 64  # two ghost columns

    def test_matches_strip_decomposition_halo_spec(self):
        from repro.vmp.performance import worldline_strip_workload

        w = worldline_strip_workload(64, 64, sweeps=100)
        spec = StripDecomposition(64, 4).halo_spec(n_slices=64)
        assert w.halo_sites_per_message == spec.sites_per_message

    def test_halo_aggregation_reduces_modeled_time(self):
        # Same bytes in 2-column buffers vs column-at-a-time: fewer
        # alphas => strictly smaller halo seconds per sweep.
        from repro.qmc.parallel import N_WL_STAGES
        from repro.vmp.performance import worldline_strip_workload

        aggregated = worldline_strip_workload(64, 64, sweeps=100)
        split = worldline_strip_workload(
            64, 64, sweeps=100,
            halo_messages_per_sweep=2 * N_WL_STAGES * 2,
            halo_sites_per_message=64.0,
        )
        t_agg = PerformanceModel(PARAGON, aggregated).halo_seconds_per_sweep(4)
        t_split = PerformanceModel(PARAGON, split).halo_seconds_per_sweep(4)
        assert t_agg < t_split

    def test_override_applies_to_halo_seconds(self):
        base = workload(bytes_per_site=1)
        more = workload(bytes_per_site=1, halo_sites_per_message=4096.0)
        t_base = PerformanceModel(PARAGON, base).halo_seconds_per_sweep(4)
        t_more = PerformanceModel(PARAGON, more).halo_seconds_per_sweep(4)
        assert t_more > t_base
