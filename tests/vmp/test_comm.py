"""Tests for the point-to-point layer of the virtual machine.

Besides the send/recv semantics this file holds the property-based
suite for ``Communicator.split``: randomized color/key assignments
must exactly partition the ranks, order sub-ranks by (key, parent
rank) like ``MPI_Comm_split``, and keep every collective and
point-to-point exchange scoped to its own sub-communicator -- on the
thread backend per example, with an mp leg pinning cross-backend
agreement on a representative split program.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.vmp.comm import payload_nbytes
from repro.vmp.machines import CM5, IDEAL, PARAGON
from repro.vmp.scheduler import run_spmd
from repro.vmp.topology import Ring


class TestPayloadNbytes:
    def test_ndarray_counts_buffer(self):
        assert payload_nbytes(np.zeros(10)) == 80
        assert payload_nbytes(np.zeros(10, dtype=np.int8)) == 10

    def test_scalars(self):
        assert payload_nbytes(1.5) == 8
        assert payload_nbytes(7) == 8

    def test_bytes(self):
        assert payload_nbytes(b"abcd") == 4

    def test_numeric_sequences(self):
        assert payload_nbytes([1.0, 2.0, 3.0]) == 24

    def test_generic_objects_use_pickle_size(self):
        assert payload_nbytes({"a": 1}) > 0

    def test_containers_of_arrays_sum_buffer_sizes(self):
        # Aggregated-halo payloads: containers recurse to arr.nbytes
        # instead of pickling array buffers just to measure them.
        a = np.zeros((3, 4))          # 96 bytes
        b = np.ones(5, dtype=np.int8)  # 5 bytes
        assert payload_nbytes((a, b)) == 96 + 5
        assert payload_nbytes([a, [b, 2.0]]) == 96 + 5 + 8
        assert payload_nbytes({"halo": a, "tag": 3}) == 96 + len(b"halo") + len(b"tag") + 8

    def test_nested_mixed_payload(self):
        payload = ((np.zeros((2, 8), dtype=np.int8), 1), {"k": np.zeros(7)})
        assert payload_nbytes(payload) == 16 + 8 + 1 + 56

    def test_container_copy_is_deep_without_pickle(self):
        from repro.vmp.comm import _copy_payload

        arr = np.arange(6.0)
        src = {"halo": (arr, [arr[:3]]), "n": 2}
        dst = _copy_payload(src)
        arr[:] = -1.0
        np.testing.assert_array_equal(dst["halo"][0], np.arange(6.0))
        np.testing.assert_array_equal(dst["halo"][1][0], np.arange(3.0))
        assert isinstance(dst["halo"], tuple) and dst["n"] == 2


def pingpong(comm):
    if comm.rank == 0:
        comm.send(np.arange(5.0), 1, tag=3)
        return comm.recv(source=1, tag=4)
    data = comm.recv(source=0, tag=3)
    comm.send(data * 2, 0, tag=4)
    return None


class TestPointToPoint:
    def test_pingpong_payload(self):
        res = run_spmd(pingpong, 2, machine=IDEAL)
        np.testing.assert_array_equal(res.values[0], 2 * np.arange(5.0))

    def test_payload_is_deep_copied(self):
        # Sender-side mutation after send must not reach the receiver.
        def prog(comm):
            if comm.rank == 0:
                x = np.zeros(4)
                comm.send(x, 1)
                x[:] = 99.0
                return None
            return comm.recv(source=0)

        res = run_spmd(prog, 2, machine=IDEAL)
        np.testing.assert_array_equal(res.values[1], np.zeros(4))

    def test_tag_selective_receive(self):
        def prog(comm):
            if comm.rank == 0:
                comm.send("first", 1, tag=1)
                comm.send("second", 1, tag=2)
                return None
            second = comm.recv(source=0, tag=2)
            first = comm.recv(source=0, tag=1)
            return (first, second)

        res = run_spmd(prog, 2, machine=IDEAL)
        assert res.values[1] == ("first", "second")

    def test_fifo_per_source_and_tag(self):
        def prog(comm):
            if comm.rank == 0:
                for k in range(5):
                    comm.send(k, 1, tag=9)
                return None
            return [comm.recv(source=0, tag=9) for _ in range(5)]

        res = run_spmd(prog, 2, machine=IDEAL)
        assert res.values[1] == [0, 1, 2, 3, 4]

    def test_sendrecv_headon_does_not_deadlock(self):
        def prog(comm):
            partner = 1 - comm.rank
            return comm.sendrecv(comm.rank, partner, partner)

        res = run_spmd(prog, 2, machine=CM5)
        assert res.values == [1, 0]

    def test_invalid_destination_rejected(self):
        def prog(comm):
            comm.send(1, 5)

        with pytest.raises(ValueError):
            run_spmd(prog, 2, machine=IDEAL)


class TestModeledTime:
    def test_message_charges_alpha_beta(self):
        payload = np.zeros(1000)  # 8000 B

        def prog(comm):
            if comm.rank == 0:
                comm.send(payload, 1)
            else:
                comm.recv(source=0)
            return comm.clock.now

        res = run_spmd(prog, 2, machine=PARAGON, topology=Ring(2))
        sender_t = res.values[0]
        receiver_t = res.values[1]
        expected_send = PARAGON.latency + 8000 * PARAGON.byte_time
        assert sender_t == pytest.approx(expected_send)
        # Receiver: its own alpha plus waiting for arrival.
        arrival = expected_send + PARAGON.hop_time * 1
        assert receiver_t == pytest.approx(max(arrival, PARAGON.latency), rel=1e-6)

    def test_receiver_does_not_wait_if_late(self):
        def prog(comm):
            if comm.rank == 0:
                comm.send(1.0, 1)
            else:
                comm.charge_compute(1e9)  # 100 s on the ideal machine? no: flops/25e6 = 40 s
                comm.recv(source=0)
            return comm.clock.breakdown().get("comm_wait", 0.0)

        res = run_spmd(prog, 2, machine=CM5)
        assert res.values[1] == 0.0

    def test_charge_compute(self):
        def prog(comm):
            comm.charge_compute(50e6)
            return comm.clock.now

        res = run_spmd(prog, 1, machine=CM5)
        assert res.values[0] == pytest.approx(2.0)

    def test_stats_counters(self):
        def prog(comm):
            if comm.rank == 0:
                comm.send(np.zeros(10), 1)
            else:
                comm.recv(source=0)
            return (comm.stats.messages_sent, comm.stats.bytes_sent,
                    comm.stats.messages_received, comm.stats.bytes_received)

        res = run_spmd(prog, 2, machine=IDEAL)
        assert res.values[0] == (1, 80, 0, 0)
        assert res.values[1] == (0, 0, 1, 80)


# ======================================================================
# Comm.split: property-based semantics
# ======================================================================


def _split_layouts(max_ranks=6):
    """Strategy: (colors, keys) for a world of 2..max_ranks ranks.

    Colors may be None (the rank opts out, like MPI_UNDEFINED); keys
    include duplicates and negatives so ordering must fall back to the
    parent rank as tiebreaker.
    """
    return st.integers(2, max_ranks).flatmap(
        lambda p: st.tuples(
            st.lists(st.one_of(st.none(), st.integers(0, 2)),
                     min_size=p, max_size=p),
            st.lists(st.integers(-2, 2), min_size=p, max_size=p),
        )
    )


def _expected_groups(colors, keys):
    """color -> parent ranks in sub-rank order (key, then parent rank)."""
    groups = {}
    for r, c in enumerate(colors):
        if c is not None:
            groups.setdefault(c, []).append(r)
    return {
        c: sorted(members, key=lambda r: (keys[r], r))
        for c, members in groups.items()
    }


class TestSplitProperties:
    @settings(max_examples=15, deadline=None)
    @given(_split_layouts())
    def test_split_exactly_partitions_ranks(self, layout):
        colors, keys = layout
        p = len(colors)

        def prog(comm):
            sub = comm.split(colors[comm.rank], key=keys[comm.rank])
            if sub is None:
                return None
            return (sub.rank, sub.size, sub._parent_ranks)

        res = run_spmd(prog, p, machine=IDEAL)
        groups = _expected_groups(colors, keys)
        seen = set()
        for color, members in groups.items():
            for sub_rank, parent_rank in enumerate(members):
                got = res.values[parent_rank]
                assert got is not None, f"rank {parent_rank} lost its group"
                assert got[0] == sub_rank, "key-then-rank ordering violated"
                assert got[1] == len(members)
                assert got[2] == tuple(members)
                seen.add(parent_rank)
        # Exact partition: every rank is in exactly one group or opted out.
        for parent_rank, color in enumerate(colors):
            if color is None:
                assert res.values[parent_rank] is None
                assert parent_rank not in seen

    @settings(max_examples=15, deadline=None)
    @given(_split_layouts())
    def test_collectives_scope_to_the_sub_communicator(self, layout):
        colors, keys = layout
        p = len(colors)

        def prog(comm):
            sub = comm.split(colors[comm.rank], key=keys[comm.rank])
            # The parent communicator keeps working alongside its
            # children: a world-level allreduce must still see p ranks.
            world_sum = comm.allreduce(comm.rank)
            if sub is None:
                return (world_sum, None, None)
            # Concurrent per-color collectives: sums must never bleed
            # across sibling sub-communicators.
            group_sum = sub.allreduce(comm.rank)
            rolled = sub.sendrecv(
                comm.rank, (sub.rank + 1) % sub.size,
                (sub.rank - 1) % sub.size,
            )
            return (world_sum, group_sum, rolled)

        res = run_spmd(prog, p, machine=IDEAL)
        groups = _expected_groups(colors, keys)
        world_want = sum(range(p))
        for parent_rank, color in enumerate(colors):
            world_sum, group_sum, rolled = res.values[parent_rank]
            assert world_sum == world_want
            if color is None:
                assert group_sum is None
            else:
                members = groups[color]
                assert group_sum == sum(members)
                # The ring neighbor is the previous member of *this*
                # group -- point-to-point traffic respects the scope too.
                idx = members.index(parent_rank)
                assert rolled == members[idx - 1]

    def test_nested_split_partitions_the_subgroup(self):
        def prog(comm):
            # 6 ranks -> two groups of 3 -> singletons/pairs inside.
            outer = comm.split(comm.rank // 3, key=comm.rank)
            inner = outer.split(outer.rank % 2, key=-outer.rank)
            return (outer.rank, outer.size, inner.rank, inner.size)

        res = run_spmd(prog, 6, machine=IDEAL)
        for rank, (o_rank, o_size, i_rank, i_size) in enumerate(res.values):
            assert o_rank == rank % 3 and o_size == 3
            # outer ranks {0, 2} have color 0; {1} has color 1.
            if o_rank % 2 == 0:
                assert i_size == 2
                # key=-outer.rank reverses the order: outer rank 2 first.
                assert i_rank == (0 if o_rank == 2 else 1)
            else:
                assert (i_rank, i_size) == (0, 1)

    def test_sub_communicator_rejects_wildcards(self):
        def prog(comm):
            sub = comm.split(0, key=comm.rank)
            if comm.rank == 0:
                sub.send(1.0, 1)
                return None
            try:
                sub.recv()  # defaults are ANY_SOURCE/ANY_TAG
            except ValueError as exc:
                sub.recv(source=0, tag=0)  # drain the pending message
                return str(exc)
            return "no error"

        res = run_spmd(prog, 2, machine=IDEAL)
        assert "wildcard" in res.values[1]

    def test_split_rejects_unknown_label(self):
        def prog(comm):
            comm.split(0, label="bogus")

        with pytest.raises(ValueError, match="label"):
            run_spmd(prog, 2, machine=IDEAL)


def _mp_split_program(comm):
    """Module-level (picklable) split program for the mp backend leg."""
    sub = comm.split(comm.rank % 2, key=-comm.rank)
    group_sum = sub.allreduce(comm.rank)
    peer = sub.bcast(comm.rank * 10.0, root=0)
    return (sub.rank, sub.size, group_sum, peer)


@pytest.mark.tier1_fault
def test_split_program_agrees_between_thread_and_mp():
    ref = run_spmd(_mp_split_program, 4, machine=PARAGON, backend="thread")
    got = run_spmd(_mp_split_program, 4, machine=PARAGON, backend="mp")
    assert ref.values == got.values
    assert got.elapsed_model_time == ref.elapsed_model_time
    assert got.total_messages == ref.total_messages
    # Spot-check the semantics once: colors {0: [2, 0], 1: [3, 1]}
    # (key=-rank reverses), roots are parent ranks 2 and 3.
    assert ref.values == [
        (1, 2, 2, 20.0),
        (1, 2, 4, 30.0),
        (0, 2, 2, 20.0),
        (0, 2, 4, 30.0),
    ]
