"""Tests for the point-to-point layer of the virtual machine."""

import numpy as np
import pytest

from repro.vmp.comm import payload_nbytes
from repro.vmp.machines import CM5, IDEAL, PARAGON
from repro.vmp.scheduler import run_spmd
from repro.vmp.topology import Ring


class TestPayloadNbytes:
    def test_ndarray_counts_buffer(self):
        assert payload_nbytes(np.zeros(10)) == 80
        assert payload_nbytes(np.zeros(10, dtype=np.int8)) == 10

    def test_scalars(self):
        assert payload_nbytes(1.5) == 8
        assert payload_nbytes(7) == 8

    def test_bytes(self):
        assert payload_nbytes(b"abcd") == 4

    def test_numeric_sequences(self):
        assert payload_nbytes([1.0, 2.0, 3.0]) == 24

    def test_generic_objects_use_pickle_size(self):
        assert payload_nbytes({"a": 1}) > 0

    def test_containers_of_arrays_sum_buffer_sizes(self):
        # Aggregated-halo payloads: containers recurse to arr.nbytes
        # instead of pickling array buffers just to measure them.
        a = np.zeros((3, 4))          # 96 bytes
        b = np.ones(5, dtype=np.int8)  # 5 bytes
        assert payload_nbytes((a, b)) == 96 + 5
        assert payload_nbytes([a, [b, 2.0]]) == 96 + 5 + 8
        assert payload_nbytes({"halo": a, "tag": 3}) == 96 + len(b"halo") + len(b"tag") + 8

    def test_nested_mixed_payload(self):
        payload = ((np.zeros((2, 8), dtype=np.int8), 1), {"k": np.zeros(7)})
        assert payload_nbytes(payload) == 16 + 8 + 1 + 56

    def test_container_copy_is_deep_without_pickle(self):
        from repro.vmp.comm import _copy_payload

        arr = np.arange(6.0)
        src = {"halo": (arr, [arr[:3]]), "n": 2}
        dst = _copy_payload(src)
        arr[:] = -1.0
        np.testing.assert_array_equal(dst["halo"][0], np.arange(6.0))
        np.testing.assert_array_equal(dst["halo"][1][0], np.arange(3.0))
        assert isinstance(dst["halo"], tuple) and dst["n"] == 2


def pingpong(comm):
    if comm.rank == 0:
        comm.send(np.arange(5.0), 1, tag=3)
        return comm.recv(source=1, tag=4)
    data = comm.recv(source=0, tag=3)
    comm.send(data * 2, 0, tag=4)
    return None


class TestPointToPoint:
    def test_pingpong_payload(self):
        res = run_spmd(pingpong, 2, machine=IDEAL)
        np.testing.assert_array_equal(res.values[0], 2 * np.arange(5.0))

    def test_payload_is_deep_copied(self):
        # Sender-side mutation after send must not reach the receiver.
        def prog(comm):
            if comm.rank == 0:
                x = np.zeros(4)
                comm.send(x, 1)
                x[:] = 99.0
                return None
            return comm.recv(source=0)

        res = run_spmd(prog, 2, machine=IDEAL)
        np.testing.assert_array_equal(res.values[1], np.zeros(4))

    def test_tag_selective_receive(self):
        def prog(comm):
            if comm.rank == 0:
                comm.send("first", 1, tag=1)
                comm.send("second", 1, tag=2)
                return None
            second = comm.recv(source=0, tag=2)
            first = comm.recv(source=0, tag=1)
            return (first, second)

        res = run_spmd(prog, 2, machine=IDEAL)
        assert res.values[1] == ("first", "second")

    def test_fifo_per_source_and_tag(self):
        def prog(comm):
            if comm.rank == 0:
                for k in range(5):
                    comm.send(k, 1, tag=9)
                return None
            return [comm.recv(source=0, tag=9) for _ in range(5)]

        res = run_spmd(prog, 2, machine=IDEAL)
        assert res.values[1] == [0, 1, 2, 3, 4]

    def test_sendrecv_headon_does_not_deadlock(self):
        def prog(comm):
            partner = 1 - comm.rank
            return comm.sendrecv(comm.rank, partner, partner)

        res = run_spmd(prog, 2, machine=CM5)
        assert res.values == [1, 0]

    def test_invalid_destination_rejected(self):
        def prog(comm):
            comm.send(1, 5)

        with pytest.raises(ValueError):
            run_spmd(prog, 2, machine=IDEAL)


class TestModeledTime:
    def test_message_charges_alpha_beta(self):
        payload = np.zeros(1000)  # 8000 B

        def prog(comm):
            if comm.rank == 0:
                comm.send(payload, 1)
            else:
                comm.recv(source=0)
            return comm.clock.now

        res = run_spmd(prog, 2, machine=PARAGON, topology=Ring(2))
        sender_t = res.values[0]
        receiver_t = res.values[1]
        expected_send = PARAGON.latency + 8000 * PARAGON.byte_time
        assert sender_t == pytest.approx(expected_send)
        # Receiver: its own alpha plus waiting for arrival.
        arrival = expected_send + PARAGON.hop_time * 1
        assert receiver_t == pytest.approx(max(arrival, PARAGON.latency), rel=1e-6)

    def test_receiver_does_not_wait_if_late(self):
        def prog(comm):
            if comm.rank == 0:
                comm.send(1.0, 1)
            else:
                comm.charge_compute(1e9)  # 100 s on the ideal machine? no: flops/25e6 = 40 s
                comm.recv(source=0)
            return comm.clock.breakdown().get("comm_wait", 0.0)

        res = run_spmd(prog, 2, machine=CM5)
        assert res.values[1] == 0.0

    def test_charge_compute(self):
        def prog(comm):
            comm.charge_compute(50e6)
            return comm.clock.now

        res = run_spmd(prog, 1, machine=CM5)
        assert res.values[0] == pytest.approx(2.0)

    def test_stats_counters(self):
        def prog(comm):
            if comm.rank == 0:
                comm.send(np.zeros(10), 1)
            else:
                comm.recv(source=0)
            return (comm.stats.messages_sent, comm.stats.bytes_sent,
                    comm.stats.messages_received, comm.stats.bytes_received)

        res = run_spmd(prog, 2, machine=IDEAL)
        assert res.values[0] == (1, 80, 0, 0)
        assert res.values[1] == (0, 0, 1, 80)
