"""Tests for the SPMD thread scheduler."""

import numpy as np
import pytest

from repro.vmp.machines import CM5, IDEAL
from repro.vmp.scheduler import run_spmd
from repro.vmp.topology import Ring


class TestBasics:
    def test_values_in_rank_order(self):
        res = run_spmd(lambda comm: comm.rank * 2, 5, machine=IDEAL)
        assert res.values == [0, 2, 4, 6, 8]

    def test_args_passed_through(self):
        res = run_spmd(lambda comm, a, b: a + b + comm.rank, 2, machine=IDEAL,
                       args=(10, 20))
        assert res.values == [30, 31]

    def test_single_rank_runs_inline(self):
        res = run_spmd(lambda comm: comm.size, 1, machine=IDEAL)
        assert res.values == [1]

    def test_zero_ranks_rejected(self):
        with pytest.raises(ValueError):
            run_spmd(lambda comm: None, 0)

    def test_max_nodes_enforced(self):
        with pytest.raises(ValueError, match="supports at most"):
            run_spmd(lambda comm: None, 2048, machine=CM5)

    def test_topology_override(self):
        res = run_spmd(lambda comm: type(comm.topology).__name__, 4,
                       machine=CM5, topology=Ring(4))
        assert res.values[0] == "Ring"

    def test_topology_size_mismatch_rejected(self):
        with pytest.raises(ValueError):
            run_spmd(lambda comm: None, 4, machine=CM5, topology=Ring(5))


class TestRandomStreams:
    def test_ranks_get_distinct_streams(self):
        def prog(comm):
            return comm.stream.uniform(size=4).tolist()

        res = run_spmd(prog, 4, machine=IDEAL, seed=3)
        assert len({tuple(v) for v in res.values}) == 4

    def test_reproducible_across_runs(self):
        def prog(comm):
            return comm.stream.uniform(size=4).tolist()

        a = run_spmd(prog, 3, machine=IDEAL, seed=5).values
        b = run_spmd(prog, 3, machine=IDEAL, seed=5).values
        assert a == b

    def test_seed_changes_streams(self):
        def prog(comm):
            return comm.stream.uniform(size=4).tolist()

        a = run_spmd(prog, 2, machine=IDEAL, seed=1).values
        b = run_spmd(prog, 2, machine=IDEAL, seed=2).values
        assert a != b


class TestFailureHandling:
    def test_exception_propagates(self):
        def prog(comm):
            if comm.rank == 1:
                raise RuntimeError("rank 1 exploded")
            comm.barrier()  # would deadlock without abort

        with pytest.raises(RuntimeError, match="rank 1 exploded"):
            run_spmd(prog, 4, machine=IDEAL)

    def test_blocked_peers_released_on_failure(self):
        def prog(comm):
            if comm.rank == 0:
                raise ValueError("boom")
            comm.recv(source=0)  # never arrives

        with pytest.raises(ValueError, match="boom"):
            run_spmd(prog, 2, machine=IDEAL)


class TestResultAccounting:
    def test_makespan_is_max_clock(self):
        def prog(comm):
            comm.charge_compute(25e6 * (comm.rank + 1))
            return None

        res = run_spmd(prog, 3, machine=CM5)
        assert res.elapsed_model_time == pytest.approx(3.0)

    def test_comm_fraction_between_zero_and_one(self):
        def prog(comm):
            comm.charge_compute(1e6)
            comm.allreduce(1.0)

        res = run_spmd(prog, 4, machine=CM5)
        assert 0.0 < res.comm_fraction() < 1.0

    def test_pure_compute_has_zero_comm_fraction(self):
        def prog(comm):
            comm.charge_compute(1e6)

        res = run_spmd(prog, 2, machine=CM5)
        assert res.comm_fraction() == 0.0

    def test_message_totals(self):
        def prog(comm):
            if comm.rank == 0:
                comm.send(np.zeros(16), 1)
            elif comm.rank == 1:
                comm.recv(source=0)

        res = run_spmd(prog, 2, machine=IDEAL)
        assert res.total_messages == 1
        assert res.total_bytes == 128

    def test_category_seconds(self):
        def prog(comm):
            comm.charge_compute(25e6)

        res = run_spmd(prog, 2, machine=CM5)
        assert res.category_seconds("compute") == pytest.approx(1.0)
