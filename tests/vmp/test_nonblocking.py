"""Tests for nonblocking point-to-point operations."""

import numpy as np
import pytest

from repro.vmp.machines import CM5, IDEAL
from repro.vmp.scheduler import run_spmd


class TestIsendIrecv:
    def test_roundtrip(self):
        def prog(comm):
            if comm.rank == 0:
                req = comm.isend(np.arange(4.0), 1, tag=5)
                req.wait()
                return None
            req = comm.irecv(source=0, tag=5)
            return req.wait().tolist()

        res = run_spmd(prog, 2, machine=IDEAL)
        assert res.values[1] == [0.0, 1.0, 2.0, 3.0]

    def test_send_request_completes_immediately(self):
        def prog(comm):
            if comm.rank == 0:
                return comm.isend("x", 1).test()
            return comm.recv(source=0)

        res = run_spmd(prog, 2, machine=IDEAL)
        assert res.values[0] is True

    def test_overlap_multiple_irecvs(self):
        # Post receives before sends arrive, complete out of order.
        def prog(comm):
            if comm.rank == 0:
                reqs = [comm.irecv(source=1, tag=t) for t in (1, 2, 3)]
                comm.send("go", 1, tag=0)
                return [r.wait() for r in reversed(reqs)]
            comm.recv(source=0, tag=0)
            for t in (1, 2, 3):
                comm.send(t * 10, 0, tag=t)
            return None

        res = run_spmd(prog, 2, machine=IDEAL)
        assert res.values[0] == [30, 20, 10]

    def test_test_polls_without_blocking(self):
        def prog(comm):
            if comm.rank == 0:
                req = comm.irecv(source=1, tag=9)
                early = req.test()  # nothing sent yet (rank 1 waits for us)
                comm.send("go", 1, tag=8)
                late = req.wait()
                return (early, late)
            comm.recv(source=0, tag=8)
            comm.send("done", 0, tag=9)
            return None

        res = run_spmd(prog, 2, machine=IDEAL)
        early, late = res.values[0]
        assert early is False
        assert late == "done"

    def test_wait_charges_modeled_time(self):
        def prog(comm):
            if comm.rank == 0:
                comm.send(np.zeros(1000), 1)
                return None
            req = comm.irecv(source=0)
            req.wait()
            return comm.clock.now

        res = run_spmd(prog, 2, machine=CM5)
        assert res.values[1] > 0

    def test_invalid_source_rejected(self):
        def prog(comm):
            comm.irecv(source=7)

        with pytest.raises(ValueError):
            run_spmd(prog, 2, machine=IDEAL)

    def test_halo_exchange_with_nonblocking(self):
        # The canonical usage pattern: post irecvs, send, wait.
        def prog(comm):
            left = (comm.rank - 1) % comm.size
            right = (comm.rank + 1) % comm.size
            r_left = comm.irecv(source=left, tag=1)
            r_right = comm.irecv(source=right, tag=2)
            comm.isend(comm.rank, right, tag=1)
            comm.isend(comm.rank, left, tag=2)
            return (r_left.wait(), r_right.wait())

        res = run_spmd(prog, 5, machine=IDEAL)
        for r, (lv, rv) in enumerate(res.values):
            assert lv == (r - 1) % 5
            assert rv == (r + 1) % 5
