"""Tests for the real-MPI execution backend.

Two tiers: availability/validation behavior that must hold on any
machine (mpi4py absent included), and real ``mpiexec`` runs that skip
unless mpi4py plus a launcher are installed (CI's MPI job runs them).
"""

import numpy as np
import pytest

from repro.qmc.parallel import WorldlineStripConfig, worldline_strip_program
from repro.vmp.faults import CrashFault, FaultPlan
from repro.vmp.machines import IDEAL, PARAGON
from repro.vmp.mpi_backend import (
    MpiUnavailableError,
    in_mpi_world,
    mpi_available,
    mpiexec_available,
    run_mpiexec,
    world_rank_hint,
    world_size_hint,
)
from repro.vmp.scheduler import BACKENDS, run_spmd

HAVE_REAL_MPI = mpi_available() and mpiexec_available()

needs_mpi = pytest.mark.skipif(
    not HAVE_REAL_MPI, reason="needs mpi4py and an mpiexec launcher"
)

_MPI_ENV_VARS = (
    "OMPI_COMM_WORLD_SIZE",
    "OMPI_COMM_WORLD_RANK",
    "PMI_SIZE",
    "PMI_RANK",
    "SLURM_NTASKS",
    "SLURM_PROCID",
)


@pytest.fixture
def plain_env(monkeypatch):
    """Environment with every MPI launcher variable removed."""
    for var in _MPI_ENV_VARS:
        monkeypatch.delenv(var, raising=False)


class TestEnvironmentDetection:
    def test_outside_any_launcher(self, plain_env):
        assert world_size_hint() == 1
        assert world_rank_hint() == 0
        assert not in_mpi_world()

    @pytest.mark.parametrize(
        "size_var,rank_var",
        [
            ("OMPI_COMM_WORLD_SIZE", "OMPI_COMM_WORLD_RANK"),
            ("PMI_SIZE", "PMI_RANK"),
            ("SLURM_NTASKS", "SLURM_PROCID"),
        ],
    )
    def test_launcher_env(self, plain_env, monkeypatch, size_var, rank_var):
        monkeypatch.setenv(size_var, "4")
        monkeypatch.setenv(rank_var, "2")
        assert world_size_hint() == 4
        assert world_rank_hint() == 2
        assert in_mpi_world()

    def test_garbage_values_ignored(self, plain_env, monkeypatch):
        monkeypatch.setenv("OMPI_COMM_WORLD_SIZE", "banana")
        assert world_size_hint() == 1
        assert not in_mpi_world()

    def test_availability_probes_are_bool(self):
        assert isinstance(mpi_available(), bool)
        assert isinstance(mpiexec_available(), bool)


def _token_ring(comm):
    """Pass a token once around the ring; every rank returns its view."""
    nxt, prv = (comm.rank + 1) % comm.size, (comm.rank - 1) % comm.size
    token = comm.sendrecv(("tok", comm.rank), dest=nxt, source=prv, sendtag=3,
                          recvtag=3)
    total = comm.allreduce(comm.rank)
    return {"from": token[1], "total": total, "rank": comm.rank}


def _array_exchange(comm):
    """Halo-style ndarray exchange plus nonblocking echo."""
    nxt, prv = (comm.rank + 1) % comm.size, (comm.rank - 1) % comm.size
    out = np.full(8, float(comm.rank))
    req = comm.irecv(source=prv, tag=11)
    comm.isend(out, nxt, tag=11).wait()
    halo = req.wait()
    return float(halo.sum()) + comm.clock.now * 0.0


class TestValidationWithoutMpi:
    def test_backend_tuple(self):
        assert BACKENDS == ("thread", "mp", "mpi")

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="unknown backend"):
            run_spmd(_token_ring, 2, machine=IDEAL, backend="pvm")

    def test_fault_plan_rejected_on_mpi(self):
        plan = FaultPlan((CrashFault(rank=1, at_step=3),))
        with pytest.raises(ValueError, match="thread/mp-only"):
            run_spmd(_token_ring, 2, machine=IDEAL, backend="mpi",
                     fault_plan=plan)

    @pytest.mark.parametrize("backend", ["mp", "mpi"])
    @pytest.mark.parametrize("flag", ["trace", "spans"])
    def test_trace_and_spans_need_thread_backend(self, backend, flag):
        with pytest.raises(ValueError, match="thread backend"):
            run_spmd(_token_ring, 2, machine=IDEAL, backend=backend,
                     **{flag: True})

    def test_missing_launcher_is_structured(self):
        with pytest.raises(MpiUnavailableError):
            run_mpiexec(_token_ring, 2, machine=IDEAL,
                        mpiexec="no-such-launcher-anywhere")

    @pytest.mark.skipif(mpi_available(), reason="mpi4py installed here")
    def test_backend_mpi_degrades_gracefully(self):
        with pytest.raises(MpiUnavailableError, match="mpi4py"):
            run_spmd(_token_ring, 2, machine=IDEAL, backend="mpi")


@needs_mpi
class TestRealMpi:
    def test_ring_and_allreduce(self):
        res = run_mpiexec(_token_ring, 4, machine=PARAGON, seed=1)
        assert [v["from"] for v in res.values] == [3, 0, 1, 2]
        assert all(v["total"] == 6 for v in res.values)
        assert res.report.completed == [0, 1, 2, 3]

    def test_ndarray_fast_path(self):
        res = run_mpiexec(_array_exchange, 2, machine=IDEAL, seed=0)
        assert res.values == [8.0, 0.0]
        assert all(s.messages_sent >= 1 for s in res.stats)

    def test_model_clock_matches_thread_backend(self):
        thread = run_spmd(_token_ring, 4, machine=PARAGON, seed=5)
        mpi = run_spmd(_token_ring, 4, machine=PARAGON, seed=5, backend="mpi")
        assert mpi.values == thread.values
        assert mpi.elapsed_model_time == pytest.approx(
            thread.elapsed_model_time, rel=0, abs=0
        )

    def test_strip_driver_bit_identical(self):
        cfg = WorldlineStripConfig(
            n_sites=8, jz=1.0, jxy=1.0, beta=0.8, n_slices=8,
            n_sweeps=30, n_thermalize=10,
        )
        thread = run_spmd(
            worldline_strip_program, 2, machine=PARAGON, seed=9,
            args=(cfg, None),
        )
        mpi = run_spmd(
            worldline_strip_program, 2, machine=PARAGON, seed=9,
            args=(cfg, None), backend="mpi",
        )
        np.testing.assert_array_equal(
            thread.values[0]["energy"], mpi.values[0]["energy"]
        )
        np.testing.assert_array_equal(
            thread.values[0]["magnetization"], mpi.values[0]["magnetization"]
        )
        assert mpi.elapsed_model_time == thread.elapsed_model_time

    def test_rank_failure_surfaces_from_mpiexec(self):
        res = None
        with pytest.raises(Exception) as excinfo:
            res = run_mpiexec(_crashing_program, 2, machine=IDEAL)
        assert res is None
        assert "mpiexec" in str(excinfo.value) or "boom" in str(excinfo.value)


def _crashing_program(comm):
    if comm.rank == 1:
        raise RuntimeError("boom: deliberate test failure")
    return comm.allreduce(1)
