"""Tests for the free-fermion TFIM solution."""

import numpy as np
import pytest

from repro.models.ed import ExactDiagonalization
from repro.models.hamiltonians import TFIM1D
from repro.models.tfim_exact import (
    tfim_finite_temperature_energy,
    tfim_free_energy,
    tfim_ground_state_energy,
    tfim_mode_energies,
    tfim_transverse_magnetization,
)


class TestModeEnergies:
    def test_count_and_positivity(self):
        lam = tfim_mode_energies(16, 1.0, 0.8)
        assert lam.shape == (16,)
        assert np.all(lam > 0)

    def test_critical_gap_closes(self):
        # At Gamma = J the minimum mode energy vanishes like pi/N.
        lam_crit = tfim_mode_energies(64, 1.0, 1.0).min()
        lam_off = tfim_mode_energies(64, 1.0, 0.5).min()
        assert lam_crit < 0.1
        assert lam_off > 0.9

    def test_too_small_rejected(self):
        with pytest.raises(ValueError):
            tfim_mode_energies(1)


class TestGroundState:
    @pytest.mark.parametrize("gamma", [0.3, 0.7, 1.0, 1.5])
    def test_matches_ed(self, gamma):
        n = 8
        ed = ExactDiagonalization(TFIM1D(n_sites=n, gamma=gamma).build_sparse(), n)
        assert tfim_ground_state_energy(n, 1.0, gamma) == pytest.approx(
            ed.ground_state_energy, abs=1e-10
        )

    def test_thermodynamic_limit_at_criticality(self):
        # e0 = -4/pi per site at Gamma = J = 1.
        e = tfim_ground_state_energy(4096, 1.0, 1.0) / 4096
        assert e == pytest.approx(-4 / np.pi, abs=1e-4)

    def test_strong_field_asymptote(self):
        # Gamma >> J: e0 -> -Gamma per site.
        e = tfim_ground_state_energy(256, 1.0, 50.0) / 256
        assert e == pytest.approx(-50.0, rel=0.01)


class TestFiniteTemperature:
    def test_zero_temperature_limit(self):
        n = 32
        e_gs = tfim_ground_state_energy(n, 1.0, 0.8)
        e_lowt = tfim_finite_temperature_energy(n, 50.0, 1.0, 0.8)
        assert e_lowt == pytest.approx(e_gs, abs=1e-6)

    def test_high_temperature_limit(self):
        # beta -> 0: <H> -> 0 (traceless Hamiltonian).
        assert tfim_finite_temperature_energy(32, 1e-9, 1.0, 1.0) == pytest.approx(
            0.0, abs=1e-6
        )

    def test_matches_ed_at_large_n_proxy(self):
        # Parity corrections are O(exp(-N)); at N=8 and moderate beta
        # they are visible but small -- assert 3% agreement.
        n, beta, gamma = 8, 1.0, 0.9
        ed = ExactDiagonalization(TFIM1D(n_sites=n, gamma=gamma).build_sparse(), n)
        ff = tfim_finite_temperature_energy(n, beta, 1.0, gamma)
        assert ff == pytest.approx(ed.thermal(beta).energy, rel=0.03)

    def test_energy_from_free_energy_derivative(self):
        # E = d(beta F)/d(beta).
        n, gamma = 64, 0.7
        beta, eps = 1.3, 1e-6
        bf = lambda b: b * tfim_free_energy(n, b, 1.0, gamma)
        dE = (bf(beta + eps) - bf(beta - eps)) / (2 * eps)
        assert tfim_finite_temperature_energy(n, beta, 1.0, gamma) == pytest.approx(
            dE, rel=1e-5
        )

    def test_negative_beta_rejected(self):
        with pytest.raises(ValueError):
            tfim_finite_temperature_energy(8, -1.0)


class TestTransverseMagnetization:
    def test_strong_field_saturates(self):
        assert tfim_transverse_magnetization(64, 100.0, 1.0, 20.0) == pytest.approx(
            1.0, abs=0.01
        )

    def test_matches_ed_ground_state(self):
        # The antiperiodic sector is exact for the ground state, so the
        # T = 0 comparison is sharp: <sigma^x> = -dE0/dGamma / N.
        n, gamma = 8, 0.8
        eps = 1e-5
        e = lambda g: ExactDiagonalization(
            TFIM1D(n_sites=n, gamma=g).build_sparse(), n
        ).ground_state_energy
        sx_ed = -(e(gamma + eps) - e(gamma - eps)) / (2 * eps) / n
        sx_ff = tfim_transverse_magnetization(n, float("inf"), 1.0, gamma)
        assert sx_ff == pytest.approx(sx_ed, abs=1e-5)

    def test_matches_ed_high_temperature(self):
        # Parity-projection corrections shrink at high T; 5% at N=8.
        n, gamma, beta = 8, 0.8, 0.5
        eps = 1e-5
        f = lambda g: -ExactDiagonalization(
            TFIM1D(n_sites=n, gamma=g).build_sparse(), n
        ).log_partition(beta) / beta
        sx_ed = -(f(gamma + eps) - f(gamma - eps)) / (2 * eps) / n
        sx_ff = tfim_transverse_magnetization(n, beta, 1.0, gamma)
        assert sx_ff == pytest.approx(sx_ed, rel=0.05)
