"""Tests for sparse spin operator construction."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.models.operators import (
    identity_on,
    pauli_x,
    pauli_y,
    pauli_z,
    site_operator,
    total_sz,
    two_site_operator,
)


def dense(m):
    return np.asarray(m.todense())


class TestSingleSite:
    def test_pauli_algebra(self):
        x, y, z = dense(pauli_x()), dense(pauli_y()), dense(pauli_z())
        np.testing.assert_allclose(x @ x, np.eye(2))
        np.testing.assert_allclose(y @ y, np.eye(2))
        np.testing.assert_allclose(z @ z, np.eye(2))
        # [x, y] = 2iz in the bit-ordered basis (down, up): check via
        # anticommutation and product identities instead of sign
        # conventions: x y = i z requires our z = diag(-1, +1).
        np.testing.assert_allclose(x @ y - y @ x, 2 * (x @ y))
        np.testing.assert_allclose(x @ y + y @ x, np.zeros((2, 2)))

    def test_z_is_diagonal_in_bit_order(self):
        z = dense(pauli_z())
        assert z[0, 0] == -1.0  # bit 0 = down
        assert z[1, 1] == +1.0  # bit 1 = up


class TestSiteOperator:
    def test_embedding_shape(self):
        op = site_operator(pauli_x(), 2, 4)
        assert op.shape == (16, 16)

    def test_site0_is_least_significant(self):
        # sigma^x on site 0 of 2 sites maps |00> -> |01> (basis index 0 -> 1).
        op = dense(site_operator(pauli_x(), 0, 2))
        assert op[1, 0] == 1.0
        op1 = dense(site_operator(pauli_x(), 1, 2))
        assert op1[2, 0] == 1.0  # flips bit 1: index 0 -> 2

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            site_operator(pauli_x(), 3, 3)

    def test_commuting_distinct_sites(self):
        a = site_operator(pauli_x(), 0, 3)
        b = site_operator(pauli_z(), 2, 3)
        np.testing.assert_allclose(dense(a @ b), dense(b @ a))


class TestTwoSiteOperator:
    def test_equals_product(self):
        ab = two_site_operator(pauli_z(), 0, pauli_z(), 2, 3)
        direct = site_operator(pauli_z(), 0, 3) @ site_operator(pauli_z(), 2, 3)
        np.testing.assert_allclose(dense(ab), dense(direct))

    def test_same_site_rejected(self):
        with pytest.raises(ValueError):
            two_site_operator(pauli_x(), 1, pauli_x(), 1, 3)


class TestTotalSz:
    def test_diagonal_values(self):
        sz = dense(total_sz(2)).diagonal()
        # states: 00 (-1), 01 (0), 10 (0), 11 (+1)
        np.testing.assert_allclose(sz, [-1.0, 0.0, 0.0, 1.0])

    def test_matches_sum_of_site_operators(self):
        n = 4
        total = sum(
            (site_operator(pauli_z(), i, n) / 2.0 for i in range(n)),
            start=sp.csr_matrix((2**n, 2**n)),
        )
        np.testing.assert_allclose(dense(total_sz(n)), dense(total))

    def test_identity(self):
        assert identity_on(3).shape == (8, 8)
        np.testing.assert_allclose(dense(identity_on(2)), np.eye(4))
