"""Tests for Hamiltonian builders against known exact values."""

import numpy as np
import pytest

from repro.models.hamiltonians import TFIM1D, TFIM2D, XXZChainModel


def eigvals(model):
    return np.linalg.eigvalsh(np.asarray(model.build_sparse().todense()))


class TestXXZChain:
    def test_hermitian(self):
        h = XXZChainModel(n_sites=6).build_sparse()
        d = np.asarray(h.todense())
        np.testing.assert_allclose(d, d.T.conj())

    def test_two_site_heisenberg_spectrum(self):
        # Two spins, open chain: singlet -3/4 J, triplet +1/4 J.
        vals = eigvals(XXZChainModel(n_sites=2, periodic=False))
        np.testing.assert_allclose(vals, [-0.75, 0.25, 0.25, 0.25], atol=1e-12)

    def test_four_site_ring_ground_state(self):
        # Classic result: E0 = -2J for the 4-site Heisenberg ring.
        vals = eigvals(XXZChainModel(n_sites=4, periodic=True))
        assert vals[0] == pytest.approx(-2.0)

    def test_ising_limit(self):
        # Jxy = 0: diagonal; Neel state energy -J/4 per bond.
        m = XXZChainModel(n_sites=4, jz=1.0, jxy=0.0, periodic=True)
        vals = eigvals(m)
        assert vals[0] == pytest.approx(-1.0)  # 4 bonds * (-1/4)

    def test_xy_limit_free_fermions(self):
        # Jz = 0 (XY chain): E0 = -sqrt(2) J for the 4-site ring (JW
        # fermions with hopping Jxy/2, antiperiodic momenta).
        m = XXZChainModel(n_sites=4, jz=0.0, jxy=1.0, periodic=True)
        assert eigvals(m)[0] == pytest.approx(-np.sqrt(2.0))

    def test_field_shifts_sectors(self):
        m0 = XXZChainModel(n_sites=4, field=0.0)
        m1 = XXZChainModel(n_sites=4, field=10.0)
        # Strong field polarizes: ground state fully up, E = E_neel-ish.
        v0, v1 = eigvals(m0)[0], eigvals(m1)[0]
        assert v1 < v0

    def test_energy_scale(self):
        assert XXZChainModel(n_sites=4, jz=2.0, jxy=0.5).energy_scale == 0.5

    def test_odd_periodic_rejected(self):
        with pytest.raises(ValueError):
            XXZChainModel(n_sites=5, periodic=True)


class TestTFIM1D:
    def test_hermitian(self):
        h = TFIM1D(n_sites=6, gamma=0.7).build_sparse()
        d = np.asarray(h.todense())
        np.testing.assert_allclose(d, d.T)

    def test_zero_field_classical_limit(self):
        vals = eigvals(TFIM1D(n_sites=4, j=1.0, gamma=0.0))
        assert vals[0] == pytest.approx(-4.0)  # all aligned, 4 bonds

    def test_strong_field_limit(self):
        vals = eigvals(TFIM1D(n_sites=4, j=0.0, gamma=2.0))
        assert vals[0] == pytest.approx(-8.0)  # 4 sites * (-Gamma)

    def test_open_vs_periodic_bond_count(self):
        e_open = eigvals(TFIM1D(n_sites=4, gamma=0.0, periodic=False))[0]
        e_pbc = eigvals(TFIM1D(n_sites=4, gamma=0.0, periodic=True))[0]
        assert e_open == pytest.approx(-3.0)
        assert e_pbc == pytest.approx(-4.0)

    def test_too_small_rejected(self):
        with pytest.raises(ValueError):
            TFIM1D(n_sites=1)


class TestTFIM2D:
    def test_classical_limit_energy(self):
        # 2x2 periodic: 8 bonds (with doubled links), all aligned.
        m = TFIM2D(lx=2, ly=2, j=1.0, gamma=0.0)
        vals = np.linalg.eigvalsh(np.asarray(m.build_sparse().todense()))
        assert vals[0] == pytest.approx(-8.0)

    def test_ground_state_monotone_in_gamma(self):
        e = [
            np.linalg.eigvalsh(
                np.asarray(TFIM2D(2, 2, gamma=g).build_sparse().todense())
            )[0]
            for g in (0.5, 1.0, 2.0)
        ]
        assert e[0] > e[1] > e[2]

    def test_oversize_rejected(self):
        with pytest.raises(ValueError):
            TFIM2D(6, 4).build_sparse()
