"""Tests for the matrix-product Trotter reference."""

import numpy as np
import pytest

from repro.models.ed import ExactDiagonalization
from repro.models.hamiltonians import XXZChainModel
from repro.models.trotter_ref import (
    checkerboard_split,
    trotter_log_z,
    trotter_reference_energy,
)


@pytest.fixture(scope="module")
def model():
    return XXZChainModel(n_sites=4, jz=1.0, jxy=1.0, periodic=False)


class TestCheckerboardSplit:
    def test_sum_is_rotated_hamiltonian(self, model):
        h_even, h_odd = checkerboard_split(model)
        total = h_even + h_odd
        # The Marshall rotation flips Jxy; the spectrum must match the
        # unrotated Hamiltonian exactly (unitary equivalence).
        rotated_spec = np.linalg.eigvalsh(total)
        original_spec = np.linalg.eigvalsh(
            np.asarray(model.build_sparse().todense())
        )
        np.testing.assert_allclose(rotated_spec, original_spec, atol=1e-10)

    def test_even_odd_terms_commute_within_color(self, model):
        # Bonds within one color are site-disjoint, hence commute; test
        # the weaker, directly checkable consequence that exp splits.
        from scipy.linalg import expm

        h_even, _ = checkerboard_split(model)
        dt = 0.1
        # For L=4 open: even bonds are (0,1) and (2,3).
        e1 = expm(-dt * h_even)
        np.testing.assert_allclose(e1 @ e1, expm(-2 * dt * h_even), atol=1e-10)

    def test_size_limit(self):
        big = XXZChainModel(n_sites=14, periodic=True)
        with pytest.raises(ValueError, match="impractical"):
            checkerboard_split(big)


class TestTrotterLogZ:
    def test_converges_to_exact_as_m_grows(self, model):
        ed = ExactDiagonalization(model.build_sparse(), 4)
        beta = 1.0
        exact = ed.log_partition(beta)
        errors = [abs(trotter_log_z(model, beta, m) - exact) for m in (2, 4, 8, 16)]
        # O(dtau^2) convergence: quadrupling M should cut the error ~16x;
        # assert at least monotone with big reduction overall.
        assert all(a > b for a, b in zip(errors, errors[1:]))
        assert errors[-1] < errors[0] / 20

    def test_invalid_args(self, model):
        with pytest.raises(ValueError):
            trotter_log_z(model, -1.0, 4)
        with pytest.raises(ValueError):
            trotter_log_z(model, 1.0, 0)


class TestTrotterReferenceEnergy:
    def test_second_order_trotter_error(self, model):
        ed = ExactDiagonalization(model.build_sparse(), 4)
        beta = 1.0
        exact = ed.thermal(beta).energy
        e4 = trotter_reference_energy(model, beta, 4)
        e8 = trotter_reference_energy(model, beta, 8)
        # Error ratio should be ~4 (dtau^2 halving M->2M).
        r = abs(e4 - exact) / abs(e8 - exact)
        assert 2.5 < r < 6.0

    def test_approaches_exact(self, model):
        ed = ExactDiagonalization(model.build_sparse(), 4)
        e = trotter_reference_energy(model, 1.0, 64)
        assert e == pytest.approx(ed.thermal(1.0).energy, abs=2e-4)

    def test_periodic_chain_supported(self):
        m = XXZChainModel(n_sites=4, periodic=True)
        e = trotter_reference_energy(m, 0.5, 8)
        assert np.isfinite(e)
