"""Tests for Onsager exact 2-D Ising results."""

import math

import pytest

from repro.models.ising_exact import (
    onsager_critical_temperature,
    onsager_energy_per_site,
    onsager_spontaneous_magnetization,
)


class TestCriticalTemperature:
    def test_value(self):
        assert onsager_critical_temperature() == pytest.approx(2.269185, abs=1e-5)

    def test_scales_with_j(self):
        assert onsager_critical_temperature(2.0) == pytest.approx(
            2 * onsager_critical_temperature(1.0)
        )

    def test_nonpositive_j_rejected(self):
        with pytest.raises(ValueError):
            onsager_critical_temperature(0.0)


class TestEnergy:
    def test_critical_value(self):
        # u(Tc) = -sqrt(2) J exactly.
        beta_c = 1.0 / onsager_critical_temperature()
        assert onsager_energy_per_site(beta_c) == pytest.approx(
            -math.sqrt(2.0), abs=1e-8
        )

    def test_ground_state_limit(self):
        assert onsager_energy_per_site(50.0) == pytest.approx(-2.0, abs=1e-6)

    def test_high_temperature_limit(self):
        assert onsager_energy_per_site(1e-4) == pytest.approx(0.0, abs=0.01)

    def test_monotone_in_beta(self):
        es = [onsager_energy_per_site(b) for b in (0.1, 0.3, 0.44, 0.6, 1.0)]
        assert all(a > b for a, b in zip(es, es[1:]))

    def test_invalid_beta_rejected(self):
        with pytest.raises(ValueError):
            onsager_energy_per_site(0.0)


class TestMagnetization:
    def test_zero_above_tc(self):
        beta_hot = 0.9 / onsager_critical_temperature()
        assert onsager_spontaneous_magnetization(beta_hot) == 0.0

    def test_saturates_at_low_temperature(self):
        assert onsager_spontaneous_magnetization(10.0) == pytest.approx(1.0, abs=1e-6)

    def test_onset_below_tc(self):
        # The 1/8 exponent makes the onset extremely steep: 2% below Tc
        # the magnetization is already ~0.74.
        beta_c = 1.0 / onsager_critical_temperature()
        m = onsager_spontaneous_magnetization(1.02 * beta_c)
        assert 0.5 < m < 0.85

    def test_known_value(self):
        # At beta = 0.5, J = 1: m = (1 - sinh(1)^-4)^(1/8).
        expected = (1 - math.sinh(1.0) ** -4) ** 0.125
        assert onsager_spontaneous_magnetization(0.5) == pytest.approx(expected)
