"""Tests for the translation-symmetry-blocked exact diagonalization."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.models.hamiltonians import XXZSquareModel
from repro.models.operators import pauli_z, site_operator
from repro.models.symmetry_ed import MomentumBlockED


def dense_thermal(model, beta):
    """Brute-force reference: full dense spectrum + staggered moment."""
    h = model.build_sparse().toarray()
    evals, evecs = np.linalg.eigh(h)
    n = model.n_sites
    lat = model.lattice
    sz = pauli_z() / 2.0
    mst = sp.csr_matrix((2**n, 2**n))
    for i in range(n):
        eps = 1.0 if lat.sublattice(i) == 0 else -1.0
        mst = mst + eps * site_operator(sz, i, n)
    m2_diag = np.einsum(
        "ia,ij,ja->a", evecs.conj(), (mst @ mst).toarray(), evecs
    ).real
    w = np.exp(-beta * (evals - evals[0]))
    z = w.sum()
    return (w * evals).sum() / z, (w * m2_diag).sum() / z / n**2


class TestAgainstDenseED:
    @pytest.mark.parametrize("shape", [(2, 2), (2, 4), (4, 2)])
    @pytest.mark.parametrize("beta", [0.7, 2.5])
    def test_heisenberg_matches_dense(self, shape, beta):
        model = XXZSquareModel(*shape, jz=1.0, jxy=1.0)
        th = MomentumBlockED(model).thermal(beta)
        e_ref, m2_ref = dense_thermal(model, beta)
        assert th.energy == pytest.approx(e_ref, abs=1e-10)
        assert th.m_stag_sq == pytest.approx(m2_ref, abs=1e-12)

    def test_anisotropic_xxz_matches_dense(self):
        model = XXZSquareModel(2, 4, jz=1.0, jxy=0.4)
        th = MomentumBlockED(model).thermal(1.3)
        e_ref, m2_ref = dense_thermal(model, 1.3)
        assert th.energy == pytest.approx(e_ref, abs=1e-10)
        assert th.m_stag_sq == pytest.approx(m2_ref, abs=1e-12)


class TestStructure:
    def test_blocks_cover_hilbert_space(self):
        # The constructor self-checks sum(block dims) == 2^n; building
        # without an AssertionError is the assertion.
        MomentumBlockED(XXZSquareModel(2, 4))

    def test_structure_factor_normalization(self):
        th = MomentumBlockED(XXZSquareModel(2, 2)).thermal(1.0)
        assert th.staggered_structure_factor(4) == pytest.approx(4 * th.m_stag_sq)

    def test_energy_decreases_with_beta(self):
        ed = MomentumBlockED(XXZSquareModel(2, 4))
        assert ed.thermal(2.0).energy < ed.thermal(0.5).energy

    def test_open_boundaries_rejected(self):
        with pytest.raises(ValueError, match="periodic"):
            MomentumBlockED(XXZSquareModel(4, 4, periodic=False))

    def test_nonpositive_beta_rejected(self):
        ed = MomentumBlockED(XXZSquareModel(2, 2))
        with pytest.raises(ValueError, match="beta"):
            ed.thermal(0.0)
