"""Tests for exact diagonalization thermodynamics."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.models.ed import ExactDiagonalization, lanczos_ground_state
from repro.models.hamiltonians import TFIM1D, XXZChainModel


@pytest.fixture(scope="module")
def heis4():
    m = XXZChainModel(n_sites=4, periodic=True)
    return ExactDiagonalization(m.build_sparse(), 4)


class TestConstruction:
    def test_dimension_mismatch_rejected(self):
        h = sp.identity(8)
        with pytest.raises(ValueError):
            ExactDiagonalization(h, 4)

    def test_non_hermitian_rejected(self):
        h = sp.csr_matrix(np.array([[0.0, 1.0], [0.0, 0.0]]))
        with pytest.raises(ValueError, match="not Hermitian"):
            ExactDiagonalization(h, 1)

    def test_too_large_rejected(self):
        with pytest.raises(ValueError, match="impractical"):
            ExactDiagonalization(sp.identity(2**15), 15)


class TestGroundState(object):
    def test_heisenberg_ring(self, heis4):
        assert heis4.ground_state_energy == pytest.approx(-2.0)

    def test_ground_state_normalized(self, heis4):
        assert np.linalg.norm(heis4.ground_state) == pytest.approx(1.0)


class TestThermal:
    def test_high_temperature_limit(self, heis4):
        # beta -> 0: <E> -> mean of spectrum = Tr H / dim = 0 for Heisenberg.
        t = heis4.thermal(1e-8)
        assert t.energy == pytest.approx(0.0, abs=1e-6)

    def test_low_temperature_limit(self, heis4):
        t = heis4.thermal(100.0)
        assert t.energy == pytest.approx(-2.0, abs=1e-6)

    def test_energy_monotone_in_beta(self, heis4):
        energies = [heis4.thermal(b).energy for b in (0.1, 0.5, 1.0, 2.0, 5.0)]
        assert all(a > b for a, b in zip(energies, energies[1:]))

    def test_specific_heat_consistent_with_derivative(self, heis4):
        # C = -beta^2 dE/dbeta; finite-difference cross-check.
        beta, eps = 1.0, 1e-5
        dE = (heis4.thermal(beta + eps).energy - heis4.thermal(beta - eps).energy) / (
            2 * eps
        )
        assert heis4.thermal(beta).specific_heat == pytest.approx(
            -(beta**2) * dE, rel=1e-4
        )

    def test_entropy_limits(self, heis4):
        # T -> inf: S -> ln(dim); T -> 0: S -> ln(degeneracy) = 0 here.
        assert heis4.thermal(1e-9).entropy == pytest.approx(np.log(16), abs=1e-5)
        assert heis4.thermal(200.0).entropy == pytest.approx(0.0, abs=1e-6)

    def test_magnetization_zero_without_field(self, heis4):
        assert heis4.thermal(1.0).magnetization == pytest.approx(0.0, abs=1e-12)

    def test_susceptibility_positive(self, heis4):
        assert heis4.thermal(1.0).susceptibility > 0

    def test_negative_beta_rejected(self, heis4):
        with pytest.raises(ValueError):
            heis4.thermal(-1.0)

    def test_free_energy_relation(self, heis4):
        # F = E - T S.
        t = heis4.thermal(2.0)
        assert t.free_energy == pytest.approx(t.energy - t.entropy / 2.0, rel=1e-10)


class TestCorrelations:
    def test_nn_correlation_from_energy(self, heis4):
        # Heisenberg ring: E = J sum_<ij> <S_i S_j> = 3 J L <Sz Sz>_nn by
        # SU(2) symmetry; check <Sz_0 Sz_1> = E / (3 L) at beta.
        beta = 1.5
        e = heis4.thermal(beta).energy
        c01 = heis4.correlation_zz(0, 1, beta)
        assert c01 == pytest.approx(e / 12.0, rel=1e-8)

    def test_autocorrelation_is_quarter(self, heis4):
        # <Sz_i Sz_i> = 1/4 for spin-1/2 at any temperature.
        assert heis4.correlation_zz(2, 2, 0.7) == pytest.approx(0.25)


class TestLanczos:
    def test_matches_dense_for_heisenberg(self):
        m = XXZChainModel(n_sites=8, periodic=True)
        h = m.build_sparse()
        lz = lanczos_ground_state(h, k=1)[0]
        dense = np.linalg.eigvalsh(np.asarray(h.todense()))[0]
        assert lz == pytest.approx(dense, abs=1e-8)

    def test_small_matrix_fallback(self):
        h = sp.diags([3.0, 1.0, 2.0])
        assert lanczos_ground_state(h, k=2).tolist() == [1.0, 2.0]

    def test_tfim_ground_state(self):
        h = TFIM1D(n_sites=10, gamma=1.0).build_sparse()
        from repro.models.tfim_exact import tfim_ground_state_energy

        lz = lanczos_ground_state(h)[0]
        assert lz == pytest.approx(tfim_ground_state_energy(10, 1.0, 1.0), abs=1e-6)
