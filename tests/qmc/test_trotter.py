"""Tests for Trotter extrapolation."""

import numpy as np
import pytest

from repro.qmc.trotter import TrotterPoint, fit_dtau_squared, trotter_extrapolate


class TestFit:
    def test_exact_quadratic_recovered(self):
        pts = [
            TrotterPoint(dtau=d, value=3.0 + 2.0 * d * d, error=0.01)
            for d in (0.05, 0.1, 0.2, 0.4)
        ]
        v0, c = fit_dtau_squared(pts)
        assert v0 == pytest.approx(3.0, abs=1e-10)
        assert c == pytest.approx(2.0, abs=1e-9)

    def test_weighting_prefers_precise_points(self):
        # A wildly wrong point with huge error should barely matter.
        pts = [
            TrotterPoint(0.1, 1.0 + 0.5 * 0.01, 0.001),
            TrotterPoint(0.2, 1.0 + 0.5 * 0.04, 0.001),
            TrotterPoint(0.3, 1.0 + 0.5 * 0.09, 0.001),
            TrotterPoint(0.4, 50.0, 1000.0),
        ]
        v0, _ = fit_dtau_squared(pts)
        assert v0 == pytest.approx(1.0, abs=0.01)

    def test_zero_error_points_handled(self):
        pts = [
            TrotterPoint(0.1, 2.01, 0.0),
            TrotterPoint(0.2, 2.04, 0.01),
            TrotterPoint(0.3, 2.09, 0.01),
        ]
        v0, c = fit_dtau_squared(pts)
        assert np.isfinite(v0) and np.isfinite(c)

    def test_too_few_points_rejected(self):
        with pytest.raises(ValueError):
            fit_dtau_squared([TrotterPoint(0.1, 1.0, 0.1)])

    def test_degenerate_grid_rejected(self):
        pts = [TrotterPoint(0.1, 1.0, 0.1), TrotterPoint(0.1, 1.1, 0.1)]
        with pytest.raises(ValueError, match="degenerate"):
            fit_dtau_squared(pts)


class TestExtrapolateDriver:
    def test_synthetic_sampler(self, rng):
        # Fake sampler: E(M) series ~ N(E0 + c dtau^2, sigma).
        beta, e_true, c = 2.0, -5.0, 3.0

        def run_at(m):
            dtau = beta / m
            return rng.normal(e_true + c * dtau**2, 0.01, size=256)

        v0, points = trotter_extrapolate(run_at, beta, [4, 8, 16, 32])
        assert v0 == pytest.approx(e_true, abs=0.01)
        assert len(points) == 4
        assert points[0].dtau == pytest.approx(0.5)

    def test_duplicate_trotter_numbers_rejected(self):
        with pytest.raises(ValueError):
            trotter_extrapolate(lambda m: np.zeros(10), 1.0, [8, 8])

    def test_short_series_error_fallback(self, rng):
        def run_at(m):
            return rng.normal(size=8)  # too short for binning

        v0, points = trotter_extrapolate(run_at, 1.0, [4, 8])
        assert all(p.error > 0 for p in points)


@pytest.mark.slow
class TestWorldlineTrotterExtrapolation:
    def test_energy_extrapolates_toward_exact(self):
        """The flagship systematic check: E(dtau) -> E_exact as dtau -> 0."""
        from repro.models.ed import ExactDiagonalization
        from repro.models.hamiltonians import XXZChainModel
        from repro.qmc.worldline import WorldlineChainQmc

        model = XXZChainModel(n_sites=4, periodic=False)
        ed = ExactDiagonalization(model.build_sparse(), 4)
        beta = 1.0
        exact = ed.thermal(beta).energy

        def run_at(m):
            q = WorldlineChainQmc(model, beta, 2 * m, seed=100 + m)
            return q.run(n_sweeps=4000, n_thermalize=400).energy

        v0, points = trotter_extrapolate(run_at, beta, [2, 4, 8])
        errs = np.array([p.error for p in points])
        assert v0 == pytest.approx(exact, abs=5 * errs.max() + 0.01)
