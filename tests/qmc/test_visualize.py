"""Tests for world-line visualization."""

import numpy as np
import pytest

from repro.models.hamiltonians import XXZChainModel
from repro.qmc.visualize import kink_positions, render_worldlines
from repro.qmc.worldline import WorldlineChainQmc


class TestKinkPositions:
    def test_straight_lines_have_no_kinks(self):
        spins = np.repeat(np.array([[1], [0], [1]], dtype=np.int8), 6, axis=1)
        assert kink_positions(spins) == []

    def test_single_exchange_gives_paired_kinks(self):
        spins = np.zeros((2, 4), dtype=np.int8)
        spins[0, :] = 1
        spins[0, 2] = 0  # worldline hops away for one slice...
        spins[1, 2] = 1  # ...onto the neighbor
        kinks = kink_positions(spins)
        assert len(kinks) == 4  # two per site (leave + return)
        assert (0, 1) in kinks and (0, 2) in kinks

    def test_wrong_shape_rejected(self):
        with pytest.raises(ValueError):
            kink_positions(np.zeros(5))


class TestRenderWorldlines:
    def test_renders_neel_pattern(self):
        spins = np.repeat(
            np.array([[i % 2] for i in range(4)], dtype=np.int8), 4, axis=1
        )
        text = render_worldlines(spins)
        assert ".#.#" in text
        assert "0 kinks" in text

    def test_row_per_slice(self):
        spins = np.ones((3, 5), dtype=np.int8)
        lines = render_worldlines(spins).splitlines()
        assert len(lines) == 1 + 5 + 1  # header + slices + footer

    def test_cropping_noted(self):
        spins = np.ones((100, 100), dtype=np.int8)
        assert "cropped" in render_worldlines(spins)

    def test_real_configuration_roundtrip(self):
        model = XXZChainModel(n_sites=8, periodic=True)
        q = WorldlineChainQmc(model, 1.0, 16, seed=4)
        for _ in range(50):
            q.sweep()
        text = render_worldlines(q.spins)
        # kink count in the footer equals the analysis function's count.
        assert f"{len(kink_positions(q.spins))} kinks" in text
