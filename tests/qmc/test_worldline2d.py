"""Tests for the 2-D (square lattice) world-line sampler.

Validation strategy: the local move set samples the fixed-winding
sector (period-accurate), and on width-2 lattices the excluded winding
weight is *not* negligible -- so the strongest test compares the
sampler against the **sector-exact** average, computed by exhaustively
enumerating the move-reachable configuration set on a 2x2 lattice.
Full-partition-function agreement is separately verified for the
weights/estimator layer via the transfer-matrix walk (no sampler
involved), and qualitative physics (staggered order) on larger
lattices.
"""

import itertools
from collections import deque

import numpy as np
import pytest

from repro.models.hamiltonians import XXZSquareModel
from repro.models.trotter_ref import trotter_reference_energy_colors
from repro.qmc.worldline2d import WorldlineSquareQmc
from repro.stats.binning import BinningAnalysis

from tests.conftest import assert_within


def make(lx=2, ly=4, beta=0.75, n_slices=8, jz=1.0, jxy=1.0, seed=0):
    model = XXZSquareModel(lx=lx, ly=ly, jz=jz, jxy=jxy)
    return WorldlineSquareQmc(model, beta, n_slices, seed=seed)


class TestConstruction:
    def test_geometry(self):
        q = make(n_slices=16)
        assert q.n_trotter == 4
        assert q.dtau == pytest.approx(0.75 / 4)
        assert q.spins.shape == (8, 16)

    def test_neel_is_legal(self):
        q = make()
        assert np.isfinite(q.config_log_weight())
        q.check_invariants()

    def test_slice_count_validation(self):
        with pytest.raises(ValueError, match="multiple of 4"):
            make(n_slices=4)
        with pytest.raises(ValueError):
            make(n_slices=10)

    def test_open_lattice_rejected(self):
        model = XXZSquareModel(lx=4, ly=4, periodic=False)
        with pytest.raises(ValueError, match="periodic"):
            WorldlineSquareQmc(model, 1.0, 8)

    def test_bond_tables_tile_every_color(self):
        q = make(lx=4, ly=4)
        assert np.all(q.partner >= 0)
        # partner is an involution per color.
        for c in range(4):
            for s in range(q.n_sites):
                assert q.partner[q.partner[s, c], c] == s

    def test_doubled_pairs_detected(self):
        assert len(make(lx=2, ly=4).doubled_pairs) > 0
        assert len(make(lx=4, ly=4).doubled_pairs) == 0


class TestWeightsAndEstimator:
    def test_neel_energy_closed_form(self):
        # All shaded plaquettes of the straight Neel state are
        # antiparallel-continue: dlogW = Jz/4 + (Jxy/2) tanh(dtau Jxy/2).
        q = make(lx=4, ly=4, beta=0.5, n_slices=8)
        n_plaq = q.n_bonds * q.n_trotter
        per = 0.25 + 0.5 * np.tanh(q.dtau * 0.5)
        assert q.energy_estimate() == pytest.approx(-n_plaq * per / q.n_trotter)

    def test_full_partition_function_matches_reference(self):
        """Transfer-matrix walk over ALL legal configs == matrix reference.

        Validates the shaded-plaquette decomposition and the energy
        estimator with no Monte Carlo involved.
        """
        model = XXZSquareModel(lx=2, ly=2)
        beta, m = 0.6, 2
        q = WorldlineSquareQmc(model, beta, 4 * m, seed=0)
        w, d = q.table.weights, q.table.dlog
        n, t_total = 4, 4 * m

        def active_pairs(color):
            out, done = [], set()
            for s in range(n):
                p = int(q.partner[s, color])
                key = (min(s, p), max(s, p))
                if key not in done:
                    done.add(key)
                    out.append((s, p))
            return out

        def bit(state, s):
            return (state >> s) & 1

        z_total, e_total = 0.0, 0.0
        for s0 in range(2**n):
            cur = {s0: (1.0, 0.0)}
            for t in range(t_total):
                nxt: dict[int, tuple[float, float]] = {}
                for st, (sw, swd) in cur.items():
                    outs = [(0, 1.0, 0.0)]
                    for a, b in active_pairs(t % 4):
                        sa, sb = bit(st, a), bit(st, b)
                        new_outs = []
                        for ta, tb in itertools.product((0, 1), (0, 1)):
                            code = sa + 2 * sb + 4 * ta + 8 * tb
                            if w[code] > 0:
                                for ns, ww, dd in outs:
                                    new_outs.append(
                                        (
                                            ns | (ta << a) | (tb << b),
                                            ww * float(w[code]),
                                            dd + float(d[code]),
                                        )
                                    )
                        outs = new_outs
                    for ns, ww, dd in outs:
                        acc = nxt.get(ns, (0.0, 0.0))
                        nxt[ns] = (acc[0] + sw * ww, acc[1] + swd * ww + sw * ww * dd)
                cur = nxt
            if s0 in cur:
                sw, swd = cur[s0]
                z_total += sw
                e_total += -swd / m
        ref = trotter_reference_energy_colors(model, beta, m)
        assert e_total / z_total == pytest.approx(ref, abs=1e-8)


class TestMoves:
    def test_sweeps_preserve_invariants(self):
        q = make(seed=3)
        for _ in range(25):
            q.sweep()
        q.check_invariants()

    def test_segment_flip_rejects_wrong_interval(self):
        q = make()
        bond = 0
        c = int(q.bond_colors[bond])
        wrong = np.array([(c + 1) % 4], dtype=np.intp)
        with pytest.raises(ValueError, match="activation intervals"):
            q.segment_flip_class(bond, wrong)

    def test_window_flip_validates_pair(self):
        q = make(lx=4, ly=4)
        with pytest.raises(ValueError, match="connecting"):
            q.attempt_window_flip(0, 5, 0, 1)  # not even neighbors

    def test_acceptance_nontrivial(self):
        q = make(beta=0.5, seed=4)
        for _ in range(30):
            q.sweep()
        assert 0.01 < q.acceptance_rate < 0.95

    def test_segment_ratio_equals_global_ratio(self):
        """Local affected-plaquette ratio == global weight ratio."""
        q = make(seed=7)
        for _ in range(10):
            q.sweep()
        rng = np.random.default_rng(2)
        w = q.table.weights
        for _ in range(25):
            bond = int(rng.integers(0, q.n_bonds))
            c = int(q.bond_colors[bond])
            t0 = int(rng.choice(np.arange(c, q.n_slices, 4)))
            affected = q._affected_for(bond)

            def local():
                p = 1.0
                for ab, off in affected:
                    tau = np.array([(t0 + off) % q.n_slices], dtype=np.intp)
                    p *= float(w[q._codes(ab, tau)][0])
                return p

            lw_old = q.config_log_weight()
            p_old = local()
            i, j = q.bond_sites[bond]
            win = q._segment_window(np.array([t0]))
            q.spins[i, win] ^= 1
            q.spins[j, win] ^= 1
            lw_new = q.config_log_weight()
            p_new = local()
            q.spins[i, win] ^= 1
            q.spins[j, win] ^= 1
            if np.isfinite(lw_new):
                assert np.log(p_new / p_old) == pytest.approx(
                    lw_new - lw_old, abs=1e-9
                )
            else:
                assert p_new == 0.0


def sector_exact_energy_2x2(q: WorldlineSquareQmc) -> float:
    """Exact average over the move-reachable sector (BFS enumeration)."""
    n, t_total = q.n_sites, q.n_slices
    w, d = q.table.weights, q.table.dlog

    def key_of(s):
        return int("".join(map(str, s.ravel().tolist())), 2)

    def config_from_key(k):
        return np.array(
            [int(x) for x in format(k, f"0{n * t_total}b")], dtype=np.int8
        ).reshape(n, t_total)

    move_vectors = []
    for bond in range(q.n_bonds):
        c = int(q.bond_colors[bond])
        for t0 in range(c, t_total, 4):
            i, j = q.bond_sites[bond]
            win = (t0 + np.arange(1, 5)) % t_total
            v = np.zeros((n, t_total), dtype=np.int8)
            v[i, win] ^= 1
            v[j, win] ^= 1
            move_vectors.append(v)
    for site in range(n):
        v = np.zeros((n, t_total), dtype=np.int8)
        v[site, :] = 1
        move_vectors.append(v)
    for (i, j), colors in q.doubled_pairs.items():
        acts = sorted(t for c in colors for t in range(c, t_total, 4))
        for k2, t1 in enumerate(acts):
            t2 = acts[(k2 + 1) % len(acts)]
            if t1 % 4 == t2 % 4:
                continue
            length = (t2 - t1) % t_total
            win = (t1 + 1 + np.arange(length)) % t_total
            v = np.zeros((n, t_total), dtype=np.int8)
            v[i, win] ^= 1
            v[j, win] ^= 1
            move_vectors.append(v)

    probe = q.spins.copy()

    def legal(s):
        q.spins = s
        return bool(np.all(w[q.shaded_codes()] > 0))

    start = probe.copy()
    seen = {key_of(start)}
    queue = deque([key_of(start)])
    while queue:
        s = config_from_key(queue.popleft())
        for v in move_vectors:
            s2 = s ^ v
            if legal(s2):
                k2 = key_of(s2)
                if k2 not in seen:
                    seen.add(k2)
                    queue.append(k2)
    z, e = 0.0, 0.0
    for k in seen:
        q.spins = config_from_key(k)
        codes = q.shaded_codes()
        ww = w[codes]
        weight = float(np.prod(ww))
        z += weight
        e += weight * float(-np.sum(d[codes]) / q.n_trotter)
    q.spins = probe
    return e / z


@pytest.mark.slow
class TestSectorExactValidation:
    def test_sampler_matches_sector_exact_average(self):
        """The decisive test: long run vs exhaustive sector enumeration."""
        model = XXZSquareModel(lx=2, ly=2)
        beta = 0.6
        q = WorldlineSquareQmc(model, beta, 8, seed=11)
        sector_ref = sector_exact_energy_2x2(q)
        meas = q.run(n_sweeps=5000, n_thermalize=500)
        ba = BinningAnalysis.from_series(meas.energy)
        assert_within(ba.mean, sector_ref, ba.error, n_sigma=4.5,
                      label="2x2 sector-exact E")

    def test_winding_restriction_is_bounded(self):
        """The excluded winding weight raises E by a bounded amount
        (documented limitation; grossly exaggerated at width 2)."""
        model = XXZSquareModel(lx=2, ly=4)
        beta, m = 0.75, 2
        full_ref = trotter_reference_energy_colors(model, beta, m)
        q = WorldlineSquareQmc(model, beta, 4 * m, seed=13)
        meas = q.run(n_sweeps=3000, n_thermalize=300)
        e = float(np.mean(meas.energy))
        assert full_ref - 0.01 < e < 0.85 * full_ref, (
            f"E={e} vs full reference {full_ref}"
        )


@pytest.mark.slow
class TestPhysics:
    def test_staggered_order_grows_as_t_falls(self):
        model = XXZSquareModel(lx=4, ly=4)
        s_hot = WorldlineSquareQmc(model, 0.5, 8, seed=17).run(
            600, n_thermalize=100
        )
        s_cold = WorldlineSquareQmc(model, 2.0, 16, seed=19).run(
            600, n_thermalize=100
        )
        assert s_cold.staggered_structure_factor(16) > s_hot.staggered_structure_factor(16)

    def test_energy_decreases_with_beta(self):
        model = XXZSquareModel(lx=4, ly=4)
        e_hot = np.mean(
            WorldlineSquareQmc(model, 0.5, 8, seed=23).run(500, 100).energy
        )
        e_cold = np.mean(
            WorldlineSquareQmc(model, 1.5, 16, seed=29).run(500, 100).energy
        )
        assert e_cold < e_hot

    def test_susceptibility_positive(self):
        model = XXZSquareModel(lx=4, ly=4)
        meas = WorldlineSquareQmc(model, 0.75, 8, seed=31).run(800, 150)
        assert meas.susceptibility(16) > 0
