"""The halo-overlap pipeline: partition tables, bit-identity, resume.

The overlap knob reorders *when* halo data moves and which sub-table a
kernel updates first; it must never change a single accept decision.
This suite pins:

* the drivers' interior/boundary partition tables (every site of every
  independence class lands in exactly one partition; tables are cached;
  degenerate thin subdomains fall back to lockstep with a warning);
* trajectory bit-identity of overlap on vs off across P in {1, 2, 4},
  scalar/vectorized kernels, and the thread/mp/mpi backends (the mpi
  leg skips where mpi4py/mpiexec are absent; CI's MPI job runs it);
* checkpoint compatibility: the knob is absent from the resume
  fingerprint, so a lockstep checkpoint resumes overlapped (and vice
  versa) bit for bit.

The bit-identity cells run through the shared
``tests.conftest.run_driver_matrix`` / ``assert_bit_identical``
helpers, the one matrix runner every driver-agreement suite uses.
"""

import numpy as np
import pytest

from repro.qmc.parallel import (
    WL_STAGES,
    IsingBlockConfig,
    WorldlineStripConfig,
    _BlockState,
    _StripState,
    ising_block_program,
    worldline_strip_program,
)
from repro.run.checkpoint import CheckpointConfig
from repro.vmp.machines import PARAGON
from repro.vmp.mpi_backend import mpi_available, mpiexec_available
from repro.vmp.scheduler import run_spmd
from tests.conftest import (
    BLOCK_KEYS,
    STRIP_KEYS,
    assert_bit_identical,
    run_driver_matrix,
)

HAVE_REAL_MPI = mpi_available() and mpiexec_available()
# The process-spawning backend legs carry the tier1_fault marker (the
# repo's "needs real process spawning" tier knob): still tier 1, but
# deselectable with --no-fault on restricted machines.
BACKENDS = [
    "thread",
    pytest.param("mp", marks=pytest.mark.tier1_fault),
] + ([pytest.param("mpi", marks=pytest.mark.tier1_fault)] if HAVE_REAL_MPI else [])


def _strip_cfg(mode="vectorized", overlap=False, n_sweeps=6, n_sites=32):
    return WorldlineStripConfig(
        n_sites=n_sites, jz=1.0, jxy=0.8, beta=0.9, n_slices=8,
        n_sweeps=n_sweeps, n_thermalize=2, mode=mode, overlap=overlap,
    )


def _block_cfg(mode="vectorized", overlap=False, n_sweeps=6):
    return IsingBlockConfig(
        lx=8, ly=8, lt=4, kx=0.25, ky=0.25, kt=0.4,
        n_sweeps=n_sweeps, n_thermalize=2, mode=mode, overlap=overlap,
    )


# ======================================================================
# partition tables
# ======================================================================


def _inspect_strip_partitions(comm, cfg):
    """Rank program: build the state and report its partition tables."""
    st = _StripState(comm, cfg)
    out = {"active": st.overlap_active, "classes": {}}
    if not st.overlap_active:
        return out
    for kind, a, b in WL_STAGES:
        if kind == "corner":
            cache = st._corner_cache[(a, b)]
            split = st._corner_split[(a, b)]
            key, sizer = f"corner{a}{b}", "j"
        else:
            cache = st._column_cache[a]
            split = st._column_split[a]
            key, sizer = f"col{a}", "lc"
        total = 0 if cache is None else cache[sizer].size
        n_int = 0 if split[0] is None else split[0][sizer].size
        n_bnd = 0 if split[1] is None else split[1][sizer].size
        out["classes"][key] = (total, n_int, n_bnd)
    # Cache identity: rebuilding a class split must hand back the very
    # same partition object the decomposition cached during __init__.
    n = st.n_owned
    cache = st._column_cache[0]
    p1 = st.decomp.overlap_partition(("wl-col", comm.rank, 0), cache["lc"], 3, n)
    p2 = st.decomp.overlap_partition(("wl-col", comm.rank, 0), cache["lc"], 3, n)
    out["cache_identity"] = p1 is p2
    return out


class TestStripPartitionTables:
    @pytest.mark.parametrize("p", [2, 4])
    def test_every_move_in_exactly_one_partition(self, p):
        res = run_spmd(
            _inspect_strip_partitions, p, PARAGON, seed=1,
            args=(_strip_cfg(overlap=True),),
        )
        for rank_info in res.values:
            assert rank_info["active"]
            assert rank_info["classes"]
            for key, (total, n_int, n_bnd) in rank_info["classes"].items():
                assert n_int + n_bnd == total, key
                if total:
                    assert n_int > 0, f"{key}: no overlappable interior"

    def test_partition_tables_cached(self):
        res = run_spmd(
            _inspect_strip_partitions, 2, PARAGON, seed=1,
            args=(_strip_cfg(overlap=True),),
        )
        assert all(v["cache_identity"] for v in res.values)

    def test_degenerate_strip_warns_and_falls_back(self):
        # 16 columns over 4 ranks -> 4 owned columns: every corner class
        # is ghost-adjacent, so the pipeline must refuse and warn.
        cfg = _strip_cfg(overlap=True, n_sites=16)
        with pytest.warns(UserWarning, match="falling back to the lockstep"):
            res = run_spmd(
                _inspect_strip_partitions, 4, PARAGON, seed=1, args=(cfg,)
            )
        assert not any(v["active"] for v in res.values)

    def test_single_rank_overlap_inactive_silently(self):
        res = run_spmd(
            _inspect_strip_partitions, 1, PARAGON, seed=1,
            args=(_strip_cfg(overlap=True),),
        )
        assert not res.values[0]["active"]


def _inspect_block_partitions(comm, cfg):
    st = _BlockState(comm, cfg)
    out = {"active": st.overlap_active}
    if st.overlap_active:
        out["colors"] = [
            (st._n_color_sites[c],
             int(st._int_masks[c].sum()),
             int(st._bnd_masks[c].sum()))
            for c in range(2)
        ]
        out["cache_identity"] = (
            st.decomp.overlap_partition(comm.rank)
            is st.decomp.overlap_partition(comm.rank)
        )
    return out


class TestBlockPartitionTables:
    @pytest.mark.parametrize("p", [2, 4])
    def test_every_site_in_exactly_one_partition(self, p):
        res = run_spmd(
            _inspect_block_partitions, p, PARAGON, seed=1,
            args=(_block_cfg(overlap=True),),
        )
        for rank_info in res.values:
            assert rank_info["active"]
            assert rank_info["cache_identity"]
            for total, n_int, n_bnd in rank_info["colors"]:
                assert n_int + n_bnd == total
                assert n_int > 0

    def test_thin_block_warns_and_falls_back(self):
        cfg = IsingBlockConfig(
            lx=4, ly=4, lt=4, kx=0.25, ky=0.25, kt=0.4,
            n_sweeps=2, overlap=True,
        )
        with pytest.warns(UserWarning, match="falling back to the lockstep"):
            res = run_spmd(_inspect_block_partitions, 4, PARAGON, seed=1,
                           args=(cfg,))
        assert not any(v["active"] for v in res.values)


# ======================================================================
# bit-identity matrix
# ======================================================================


def _run_strip(p, mode, overlap, backend="thread", ckpt=None, n_sweeps=6):
    return run_driver_matrix(
        worldline_strip_program, p,
        _strip_cfg(mode=mode, overlap=overlap, n_sweeps=n_sweeps),
        seed=42, backend=backend, checkpoint=ckpt,
    )


def _run_block(p, mode, overlap, backend="thread", ckpt=None, n_sweeps=6):
    return run_driver_matrix(
        ising_block_program, p,
        _block_cfg(mode=mode, overlap=overlap, n_sweeps=n_sweeps),
        seed=42, backend=backend, checkpoint=ckpt,
    )


@pytest.mark.parametrize("p", [1, 2, 4])
@pytest.mark.parametrize("mode", ["scalar", "vectorized"])
class TestOverlapBitIdentity:
    def test_strip_overlap_matches_lockstep(self, p, mode):
        ref = _run_strip(p, mode, overlap=False)
        got = _run_strip(p, mode, overlap=True)
        assert_bit_identical(ref, got, STRIP_KEYS)
        if p > 1:
            # The pipeline must shorten the modeled makespan, never pad it.
            assert got.elapsed_model_time < ref.elapsed_model_time

    def test_block_overlap_matches_lockstep(self, p, mode):
        ref = _run_block(p, mode, overlap=False)
        got = _run_block(p, mode, overlap=True)
        assert_bit_identical(ref, got, BLOCK_KEYS)
        if p > 1:
            assert got.elapsed_model_time < ref.elapsed_model_time


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("p", [1, 2, 4])
class TestOverlapAcrossBackends:
    def test_strip_backend_agrees_with_thread_lockstep(self, backend, p):
        ref = _run_strip(p, "vectorized", overlap=False, backend="thread")
        got = _run_strip(p, "vectorized", overlap=True, backend=backend)
        assert_bit_identical(ref, got, STRIP_KEYS)

    def test_block_backend_agrees_with_thread_lockstep(self, backend, p):
        ref = _run_block(p, "vectorized", overlap=False, backend="thread")
        got = _run_block(p, "vectorized", overlap=True, backend=backend)
        assert_bit_identical(ref, got, BLOCK_KEYS)


# ======================================================================
# checkpoint/resume with the knob toggled
# ======================================================================


class TestOverlapResume:
    @pytest.mark.parametrize("save_overlap,resume_overlap",
                             [(False, True), (True, False)])
    def test_strip_resume_toggles_overlap(self, tmp_path, save_overlap,
                                          resume_overlap):
        ref = _run_strip(2, "vectorized", overlap=False).values[0]
        d = tmp_path / "ck"
        _run_strip(2, "vectorized", overlap=save_overlap, n_sweeps=3,
                   ckpt=CheckpointConfig(d, every=3))
        resumed = _run_strip(2, "vectorized", overlap=resume_overlap,
                             n_sweeps=6,
                             ckpt=CheckpointConfig(d, resume=True)).values[0]
        np.testing.assert_array_equal(resumed["energy"], ref["energy"])
        np.testing.assert_array_equal(
            resumed["magnetization"], ref["magnetization"]
        )
        np.testing.assert_array_equal(
            resumed["owned_spins"], ref["owned_spins"]
        )

    def test_block_resume_toggles_overlap(self, tmp_path):
        ref = _run_block(2, "vectorized", overlap=False).values[0]
        d = tmp_path / "ck"
        _run_block(2, "vectorized", overlap=False, n_sweeps=3,
                   ckpt=CheckpointConfig(d, every=3))
        resumed = _run_block(2, "vectorized", overlap=True, n_sweeps=6,
                             ckpt=CheckpointConfig(d, resume=True)).values[0]
        np.testing.assert_array_equal(resumed["block"], ref["block"])
        np.testing.assert_array_equal(resumed["bond_sums"], ref["bond_sums"])
