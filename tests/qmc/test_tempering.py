"""Tests for parallel tempering + WHAM integration."""

import numpy as np
import pytest

from repro.qmc.tempering import (
    TemperingConfig,
    histograms_from_results,
    tempering_program,
)
from repro.stats.wham import multi_histogram_reweight
from repro.vmp.machines import IDEAL
from repro.vmp.scheduler import run_spmd

BETAS = (0.25, 0.32, 0.40, 0.50)

CFG = TemperingConfig(
    shape=(8, 8),
    couplings_j=(1.0, 1.0),
    betas=BETAS,
    n_sweeps=400,
    n_thermalize=100,
    exchange_every=5,
    histogram_bins=48,
)


@pytest.fixture(scope="module")
def results():
    res = run_spmd(tempering_program, len(BETAS), machine=IDEAL, seed=21, args=(CFG,))
    return res.values


class TestTemperingRun:
    def test_one_beta_per_rank_enforced(self):
        with pytest.raises(ValueError, match="one beta per rank"):
            run_spmd(tempering_program, 2, machine=IDEAL, args=(CFG,))

    def test_energies_ordered_by_temperature(self, results):
        # Colder replicas sit at lower physical energy on average.
        means = [np.mean(r["energy"]) for r in results]
        assert means[0] > means[-1]

    def test_exchange_acceptance_reasonable(self, results):
        # With this closely spaced grid most swap attempts should land.
        total_att = sum(r["exchange_attempts"] for r in results)
        total_acc = sum(r["exchange_accepts"] for r in results)
        assert total_att > 0
        assert 0.2 < total_acc / total_att <= 1.0

    def test_partner_bookkeeping_symmetric(self, results):
        # Each exchange is counted once by each partner: totals are even.
        assert sum(r["exchange_attempts"] for r in results) % 2 == 0
        assert sum(r["exchange_accepts"] for r in results) % 2 == 0

    def test_histograms_populated(self, results):
        for r in results:
            assert r["n_samples"] == CFG.n_sweeps


class TestWhamIntegration:
    def test_wham_combines_threads(self, results):
        hists = histograms_from_results(results)
        wham = multi_histogram_reweight(hists, [r["beta"] for r in results])
        assert wham.converged

    def test_interpolated_energy_is_monotone(self, results):
        hists = histograms_from_results(results)
        wham = multi_histogram_reweight(hists, [r["beta"] for r in results])
        betas = np.linspace(0.26, 0.48, 8)
        energies = [wham.mean_energy(b) for b in betas]
        assert all(a >= b for a, b in zip(energies, energies[1:]))

    def test_interpolation_matches_direct_thread_means(self, results):
        hists = histograms_from_results(results)
        wham = multi_histogram_reweight(hists, [r["beta"] for r in results])
        for r in results[1:3]:  # interior temperatures, well-supported
            direct = float(np.mean(r["energy"]))
            assert wham.mean_energy(r["beta"]) == pytest.approx(
                direct, abs=0.05 * abs(direct) + 2.0
            )
