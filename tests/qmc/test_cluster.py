"""Tests for Swendsen--Wang cluster updates."""

import itertools

import numpy as np
import pytest

from repro.models.ising_exact import (
    onsager_critical_temperature,
    onsager_spontaneous_magnetization,
)
from repro.qmc.classical_ising import AnisotropicIsing
from repro.qmc.cluster import SwendsenWangIsing
from repro.stats.autocorr import integrated_autocorr_time


class TestConstruction:
    def test_inherits_validation(self):
        with pytest.raises(ValueError):
            SwendsenWangIsing((5, 4), (1.0, 1.0))

    def test_activation_probabilities(self):
        s = SwendsenWangIsing((4, 4), (0.5, 0.0))
        assert s._p_activate[0] == pytest.approx(1 - np.exp(-1.0))
        assert s._p_activate[1] == 0.0


class TestClusterSweep:
    def test_zero_coupling_gives_singleton_clusters(self):
        s = SwendsenWangIsing((6, 6), (0.0, 0.0), seed=1)
        n = s.cluster_sweep()
        assert n == 36
        assert s.mean_cluster_size() == pytest.approx(1.0)

    def test_strong_coupling_gives_one_cluster(self):
        s = SwendsenWangIsing((6, 6), (10.0, 10.0), seed=2)
        n = s.cluster_sweep()
        assert n == 1
        # Single cluster: spins stay globally aligned (up or down).
        assert abs(s.magnetization()) == 1.0

    def test_inert_axis_supported(self):
        s = SwendsenWangIsing((6, 1, 4), (0.5, 0.0, 0.5), seed=3)
        s.sweep()
        assert s.spins.shape == (6, 1, 4)

    def test_spins_remain_pm_one(self):
        s = SwendsenWangIsing((4, 4), (0.4, 0.4), seed=4)
        for _ in range(10):
            s.sweep()
        assert set(np.unique(s.spins)) <= {-1, 1}

    def test_mix_local_runs(self):
        s = SwendsenWangIsing((4, 4), (0.4, 0.4), seed=5, mix_local=True)
        for _ in range(5):
            s.sweep()
        assert s.n_attempted > 0


class TestExactDistribution:
    def test_2x2_boltzmann(self):
        """SW must sample the same Boltzmann distribution as Metropolis."""
        k = (0.3, 0.2)
        s = SwendsenWangIsing((2, 2), k, seed=11, hot_start=True)

        def reduced_energy(spins):
            e = 0.0
            for a in range(2):
                e -= k[a] * np.sum(spins * np.roll(spins, -1, axis=a))
            return e

        weights = {}
        for bits in itertools.product((-1, 1), repeat=4):
            cfg = np.array(bits, dtype=np.int8).reshape(2, 2)
            weights[bits] = np.exp(-reduced_energy(cfg))
        z = sum(weights.values())

        counts = {b: 0 for b in weights}
        n = 30000
        for _ in range(n):
            s.sweep()
            counts[tuple(s.spins.ravel().tolist())] += 1
        for bits, w in weights.items():
            p_exact = w / z
            p_emp = counts[bits] / n
            sigma = np.sqrt(p_exact * (1 - p_exact) / n)
            assert abs(p_emp - p_exact) < 6 * sigma + 0.004


@pytest.mark.slow
class TestPhysicsAndEfficiency:
    def test_magnetization_matches_onsager(self):
        beta = 0.6
        s = SwendsenWangIsing((16, 16), (beta, beta), seed=13)
        obs = s.run(n_sweeps=2000, n_thermalize=200)
        m = float(np.mean(obs.abs_magnetization))
        assert m == pytest.approx(onsager_spontaneous_magnetization(beta), abs=0.02)

    def test_beats_local_updates_at_criticality(self):
        """The whole point of SW: near-critical tau collapses."""
        beta = 1.0 / 2.3  # just above Tc for L=16
        n_sweeps = 4000
        local = AnisotropicIsing((16, 16), (beta, beta), seed=17, hot_start=True)
        obs_l = local.run(n_sweeps=n_sweeps, n_thermalize=500)
        tau_local = integrated_autocorr_time(obs_l.magnetization)

        sw = SwendsenWangIsing((16, 16), (beta, beta), seed=19, hot_start=True)
        obs_c = sw.run(n_sweeps=n_sweeps, n_thermalize=200)
        tau_sw = integrated_autocorr_time(obs_c.magnetization)
        assert tau_sw < 0.2 * tau_local, f"SW {tau_sw:.1f} vs local {tau_local:.1f}"

    def test_cluster_size_grows_near_criticality(self):
        sizes = {}
        for beta in (0.25, 1.0 / onsager_critical_temperature()):
            s = SwendsenWangIsing((16, 16), (beta, beta), seed=23, hot_start=True)
            for _ in range(50):
                s.sweep()
            sizes[beta] = s.mean_cluster_size()
        betas = sorted(sizes)
        # Mean size over *all* clusters (singletons included) grows ~2.5x
        # from deep disorder to criticality at L=16.
        assert sizes[betas[1]] > 2 * sizes[betas[0]]


class TestCachedGeometryRegression:
    """Pinned fixed-seed trajectories: the cached neighbor-index tables
    and reused edge-weight workspace must not perturb the RNG order or
    the decomposition."""

    def test_3d_trajectory_pinned(self):
        sw = SwendsenWangIsing((8, 8, 4), (0.35, 0.35, 0.6), seed=7,
                               hot_start=True)
        ncl, mags = [], []
        for _ in range(10):
            ncl.append(sw.cluster_sweep())
            mags.append(int(sw.spins.sum()))
        assert ncl == [65, 30, 25, 21, 14, 13, 10, 7, 5, 7]
        assert mags == [-108, -126, -182, -230, -234, 248, -246, 254, 250,
                        -250]
        spin_hash = int(
            np.dot(sw.spins.ravel().astype(np.int64) + 1,
                   np.arange(sw.n_sites)) % 1000003
        )
        assert spin_hash == 746

    def test_2d_mixed_trajectory_pinned(self):
        sw = SwendsenWangIsing((16, 16), (0.44, 0.44), seed=11,
                               mix_local=True, hot_start=True)
        mags = []
        for _ in range(6):
            sw.sweep()
            mags.append(int(sw.spins.sum()))
        assert mags == [42, -168, -194, 190, -172, -226]
        spin_hash = int(
            np.dot(sw.spins.ravel().astype(np.int64) + 1,
                   np.arange(sw.n_sites)) % 1000003
        )
        assert spin_hash == 3348

    def test_inert_axis_has_no_cached_table(self):
        sw = SwendsenWangIsing((8, 1, 4), (0.3, 0.0, 0.5), seed=2)
        assert sw._rolled_index[1] is None
        assert sw._rolled_index[0] is not None
        sw.cluster_sweep()  # still runs with the axis skipped
