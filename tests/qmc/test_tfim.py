"""Tests for the TFIM quantum-classical mapping sampler."""

import numpy as np
import pytest

from repro.models.ed import ExactDiagonalization
from repro.models.hamiltonians import TFIM1D, TFIM2D
from repro.qmc.tfim import (
    TfimQmc,
    tfim_energy_from_bond_sums,
    tfim_sigma_x_from_time_bonds,
)
from repro.stats.binning import BinningAnalysis

from tests.conftest import assert_within


class TestConstruction:
    def test_couplings(self):
        q = TfimQmc((8,), j=1.0, gamma=0.5, beta=2.0, n_slices=16)
        assert q.dtau == pytest.approx(0.125)
        assert q.k_space == pytest.approx(0.125)
        assert q.k_tau == pytest.approx(-0.5 * np.log(np.tanh(0.0625)))
        assert q.k_tau > 0

    def test_classical_lattice_shape(self):
        assert TfimQmc((4,), 1, 1, 1.0, 8).spins.shape == (4, 8)
        assert TfimQmc((4, 6), 1, 1, 1.0, 8).spins.shape == (4, 6, 8)

    def test_zero_gamma_rejected(self):
        with pytest.raises(ValueError, match="Gamma > 0"):
            TfimQmc((4,), 1.0, 0.0, 1.0, 8)

    def test_odd_slices_rejected(self):
        with pytest.raises(ValueError):
            TfimQmc((4,), 1.0, 1.0, 1.0, 7)

    def test_3d_rejected(self):
        with pytest.raises(ValueError):
            TfimQmc((4, 4, 4), 1.0, 1.0, 1.0, 8)


class TestEstimatorFunctions:
    def test_sigma_x_bounds(self):
        # All-equal time bonds -> tanh; all-unequal -> coth.
        x = 0.1 * 1.0
        assert tfim_sigma_x_from_time_bonds(100, 100, 1.0, 0.1) == pytest.approx(
            np.tanh(x)
        )
        assert tfim_sigma_x_from_time_bonds(-100, 100, 1.0, 0.1) == pytest.approx(
            1 / np.tanh(x)
        )

    def test_energy_decreases_with_space_alignment(self):
        base = dict(n_sites=8, n_slices=16, j=1.0, gamma=1.0, dtau=0.1)
        e_aligned = tfim_energy_from_bond_sums(128, 100, **base)
        e_random = tfim_energy_from_bond_sums(0, 100, **base)
        assert e_aligned < e_random


@pytest.mark.slow
class TestValidationAgainstED:
    @pytest.mark.parametrize("gamma", [0.6, 1.0, 1.4])
    def test_energy_matches_ed(self, gamma):
        n, beta, m = 8, 2.0, 32
        ed = ExactDiagonalization(TFIM1D(n_sites=n, gamma=gamma).build_sparse(), n)
        ref = ed.thermal(beta).energy
        q = TfimQmc((n,), j=1.0, gamma=gamma, beta=beta, n_slices=m, seed=31)
        meas = q.run(n_sweeps=5000, n_thermalize=500)
        ba = BinningAnalysis.from_series(meas.energy)
        # Trotter bias at dtau=1/16 is below ~0.5% of |E|.
        assert_within(ba.mean, ref, ba.error, n_sigma=4.5, atol=0.01 * abs(ref),
                      label=f"TFIM E (gamma={gamma})")

    def test_sigma_x_matches_ed(self):
        n, beta, gamma, m = 8, 2.0, 0.8, 32
        # ED <sigma^x> via free-energy derivative.
        eps = 1e-5
        f = lambda g: -ExactDiagonalization(
            TFIM1D(n_sites=n, gamma=g).build_sparse(), n
        ).log_partition(beta) / beta
        ref = -(f(gamma + eps) - f(gamma - eps)) / (2 * eps) / n
        q = TfimQmc((n,), j=1.0, gamma=gamma, beta=beta, n_slices=m, seed=37)
        meas = q.run(n_sweeps=5000, n_thermalize=500)
        ba = BinningAnalysis.from_series(meas.sigma_x)
        assert_within(ba.mean, ref, ba.error, n_sigma=4.5, atol=0.01 * ref,
                      label="TFIM sigma_x")

    def test_2d_energy_matches_ed(self):
        lx, ly, beta, gamma, m = 2, 4, 1.5, 1.2, 24
        ham = TFIM2D(lx=lx, ly=ly, gamma=gamma).build_sparse()
        ed = ExactDiagonalization(ham, lx * ly)
        ref = ed.thermal(beta).energy
        q = TfimQmc((lx, ly), j=1.0, gamma=gamma, beta=beta, n_slices=m, seed=41)
        meas = q.run(n_sweeps=4000, n_thermalize=400)
        ba = BinningAnalysis.from_series(meas.energy)
        assert_within(ba.mean, ref, ba.error, n_sigma=4.5, atol=0.015 * abs(ref),
                      label="TFIM 2D E")

    def test_free_fermion_large_chain(self):
        from repro.models.tfim_exact import tfim_finite_temperature_energy

        n, beta, gamma, m = 32, 1.0, 1.0, 16
        ref = tfim_finite_temperature_energy(n, beta, 1.0, gamma)
        q = TfimQmc((n,), j=1.0, gamma=gamma, beta=beta, n_slices=m, seed=43)
        meas = q.run(n_sweeps=4000, n_thermalize=400)
        ba = BinningAnalysis.from_series(meas.energy)
        # dtau = 1/16: Trotter bias ~1%; critical chain so allow wide.
        assert_within(ba.mean, ref, ba.error, n_sigma=5.0, atol=0.02 * abs(ref),
                      label="TFIM L=32 E")


class TestOrderParameter:
    def test_ordered_phase_magnetized(self):
        q = TfimQmc((16,), j=1.0, gamma=0.2, beta=8.0, n_slices=32, seed=47)
        meas = q.run(n_sweeps=800, n_thermalize=200)
        assert np.mean(meas.abs_magnetization) > 0.8

    def test_disordered_phase_unmagnetized(self):
        q = TfimQmc((16,), j=1.0, gamma=4.0, beta=8.0, n_slices=32, seed=53)
        meas = q.run(n_sweeps=800, n_thermalize=200)
        assert np.mean(meas.abs_magnetization) < 0.4

    def test_binder_cumulant_bounds(self):
        q = TfimQmc((8,), j=1.0, gamma=1.0, beta=4.0, n_slices=16, seed=59)
        meas = q.run(n_sweeps=500, n_thermalize=100)
        u4 = meas.binder_cumulant()
        assert -1.0 <= u4 <= 2.0 / 3.0 + 1e-9

    def test_spin_correlation_decays(self):
        q = TfimQmc((16,), j=1.0, gamma=2.0, beta=4.0, n_slices=16, seed=61)
        for _ in range(300):
            q.sweep()
        c = q.spin_correlation()
        assert c[0] == pytest.approx(1.0)
        assert c[len(c) - 1] < c[1]


class TestCorrelationFastPath:
    @pytest.mark.parametrize("shape,axis", [((8,), 0), ((6, 4), 0), ((6, 4), 1)])
    def test_fft_equals_loop(self, shape, axis):
        q = TfimQmc(shape, j=1.0, gamma=1.5, beta=2.0, n_slices=8, seed=67)
        for _ in range(30):
            q.sweep()
        np.testing.assert_allclose(
            q.spin_correlation(axis=axis, method="fft"),
            q.spin_correlation(axis=axis, method="loop"),
            atol=1e-12,
        )

    def test_unknown_method_rejected(self):
        q = TfimQmc((8,), j=1.0, gamma=1.0, beta=1.0, n_slices=8, seed=3)
        with pytest.raises(ValueError, match="method"):
            q.spin_correlation(method="rolls")
