"""Tempering and replica drivers on the process backend.

Satellite coverage for the backend work: the parallel-tempering and
replica rank programs -- the two drivers whose correctness depends on
shared decision streams and collectives rather than halo exchange --
must produce bit-identical results on real OS processes, and the
observed swap acceptance must match the detailed-balance expectation
computed from the sampled energy series.
"""

import numpy as np
import pytest

from repro.qmc.classical_ising import AnisotropicIsing
from repro.qmc.replica import ReplicaConfig, replica_program
from repro.qmc.tempering import TemperingConfig, tempering_program
from repro.vmp.machines import CM5, IDEAL
from repro.vmp.scheduler import run_spmd

BETAS = (0.25, 0.32, 0.40, 0.50)

PT_CFG = TemperingConfig(
    shape=(8, 8),
    couplings_j=(1.0, 1.0),
    betas=BETAS,
    n_sweeps=200,
    n_thermalize=50,
    exchange_every=5,
    histogram_bins=48,
)


def _ising_factory(stream):
    return AnisotropicIsing((8, 8), (0.3, 0.3), stream=stream, hot_start=True)


REPLICA_CFG = ReplicaConfig(
    sampler_factory=_ising_factory,
    observables=("magnetization", "abs_magnetization"),
    n_sweeps=60,
    n_thermalize=20,
    flops_per_sweep=8 * 8 * 14.0,
)


@pytest.fixture(scope="module")
def pt_pair():
    thread = run_spmd(
        tempering_program, len(BETAS), machine=CM5, seed=21, args=(PT_CFG,)
    )
    mp = run_spmd(
        tempering_program, len(BETAS), machine=CM5, seed=21, args=(PT_CFG,),
        backend="mp",
    )
    return thread, mp


class TestTemperingOnProcesses:
    def test_trajectories_bit_identical(self, pt_pair):
        thread, mp = pt_pair
        for t, m in zip(thread.values, mp.values):
            np.testing.assert_array_equal(t["energy"], m["energy"])
            np.testing.assert_array_equal(
                t["histogram_counts"], m["histogram_counts"]
            )
            assert t["exchange_attempts"] == m["exchange_attempts"]
            assert t["exchange_accepts"] == m["exchange_accepts"]

    def test_modeled_makespan_identical(self, pt_pair):
        thread, mp = pt_pair
        assert mp.elapsed_model_time == thread.elapsed_model_time

    def test_acceptance_matches_detailed_balance(self, pt_pair):
        # Detailed balance fixes the swap acceptance at
        # min(1, exp[(b_i - b_j)(E_i - E_j)]).  Estimating its mean
        # from the sampled energy series of a neighboring pair must
        # agree with the observed acceptance of the run (same chains,
        # so the estimate is tight even for short series).
        _, mp = pt_pair
        for lo in range(len(BETAS) - 1):
            e_lo = mp.values[lo]["energy"]
            e_hi = mp.values[lo + 1]["energy"]
            d_beta = BETAS[lo] - BETAS[lo + 1]
            expected = np.minimum(
                1.0, np.exp(d_beta * (e_lo - e_hi))
            ).mean()
            att = min(
                mp.values[lo]["exchange_attempts"],
                mp.values[lo + 1]["exchange_attempts"],
            )
            acc = min(
                mp.values[lo]["exchange_accepts"],
                mp.values[lo + 1]["exchange_accepts"],
            )
            assert att > 0
            observed = acc / att
            # Pair bookkeeping mixes both neighbors of interior ranks,
            # so compare loosely; a sign error or a broken shared
            # decision stream lands far outside this window.
            assert abs(observed - expected) < 0.35

    def test_equal_betas_always_swap(self):
        cfg = TemperingConfig(
            shape=(4, 4),
            couplings_j=(1.0, 1.0),
            betas=(0.4, 0.4),
            n_sweeps=40,
            exchange_every=2,
        )
        res = run_spmd(tempering_program, 2, machine=IDEAL, seed=2,
                       args=(cfg,), backend="mp")
        for v in res.values:
            assert v["exchange_accepts"] == v["exchange_attempts"] > 0


class TestReplicaOnProcesses:
    def test_replica_program_agrees_with_thread_backend(self):
        thread = run_spmd(
            replica_program, 4, machine=CM5, seed=3, args=(REPLICA_CFG,)
        )
        mp = run_spmd(
            replica_program, 4, machine=CM5, seed=3, args=(REPLICA_CFG,),
            backend="mp",
        )
        for t, m in zip(thread.values, mp.values):
            assert t["pooled_mean"] == m["pooled_mean"]
        for name in REPLICA_CFG.observables:
            for ts, ms in zip(
                thread.values[0]["series"][name], mp.values[0]["series"][name]
            ):
                np.testing.assert_array_equal(ts, ms)
        assert mp.elapsed_model_time == thread.elapsed_model_time
