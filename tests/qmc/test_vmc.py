"""Tests for the Marshall-Jastrow VMC baseline."""

import numpy as np
import pytest

from repro.models.ed import ExactDiagonalization
from repro.models.hamiltonians import XXZChainModel
from repro.qmc.vmc import MarshallJastrowVmc


@pytest.fixture(scope="module")
def model():
    return XXZChainModel(n_sites=8, periodic=True)


@pytest.fixture(scope="module")
def e0(model):
    return ExactDiagonalization(model.build_sparse(), 8).ground_state_energy


class TestConstruction:
    def test_neel_start_sz0(self, model):
        vmc = MarshallJastrowVmc(model, alpha=0.3)
        assert vmc.spins.sum() == pytest.approx(0.0)

    def test_odd_sites_rejected(self):
        m = XXZChainModel(n_sites=5, periodic=False)
        with pytest.raises(ValueError):
            MarshallJastrowVmc(m, 0.3)

    def test_field_rejected(self):
        m = XXZChainModel(n_sites=4, field=1.0, periodic=False)
        with pytest.raises(ValueError):
            MarshallJastrowVmc(m, 0.3)


class TestSampling:
    def test_sweep_conserves_sz(self, model):
        vmc = MarshallJastrowVmc(model, alpha=0.4, seed=1)
        for _ in range(50):
            vmc.sweep()
            assert vmc.spins.sum() == pytest.approx(0.0)

    def test_spins_stay_half(self, model):
        vmc = MarshallJastrowVmc(model, alpha=0.4, seed=2)
        for _ in range(20):
            vmc.sweep()
        assert set(np.unique(vmc.spins)) == {-0.5, 0.5}

    def test_acceptance_nontrivial(self, model):
        res = MarshallJastrowVmc(model, alpha=0.3, seed=3).run(200)
        assert 0.05 < res.acceptance_rate <= 1.0


class TestVariationalPrinciple:
    @pytest.mark.parametrize("alpha", [0.0, 0.2, 0.4, 0.8])
    def test_energy_above_ground_state(self, model, e0, alpha):
        res = MarshallJastrowVmc(model, alpha, seed=5).run(1500, n_thermalize=200)
        # E_vmc >= E_0 up to statistical noise.
        assert res.energy >= e0 - 5 * res.energy_error_naive - 0.02

    def test_good_alpha_close_to_exact(self, model, e0):
        # The one-parameter Marshall-Jastrow state reaches ~98% of the
        # 8-site ring's ground-state energy at its optimum alpha ~= 1.0.
        res = MarshallJastrowVmc(model, alpha=1.0, seed=7).run(
            3000, n_thermalize=300
        )
        assert res.energy == pytest.approx(e0, abs=0.03 * abs(e0))

    def test_alpha_zero_is_worse_than_optimum(self, model):
        e_zero = MarshallJastrowVmc(model, 0.0, seed=9).run(1500, 200).energy
        e_opt = MarshallJastrowVmc(model, 1.0, seed=9).run(1500, 200).energy
        assert e_opt < e_zero


class TestOptimization:
    def test_grid_search_finds_interior_optimum(self, model):
        alphas = np.array([0.0, 0.5, 1.0, 1.6, 2.5])
        best, results = MarshallJastrowVmc.optimize_alpha(
            model, alphas, n_sweeps=800, seed=11
        )
        assert len(results) == 5
        # The optimum should not be at the extreme ends of the grid.
        assert best in (0.5, 1.0, 1.6)

    def test_local_energy_of_neel(self, model):
        # Neel configuration: all bonds antiparallel; diagonal part
        # = -J/4 per bond; off-diagonal negative => E_L < -L*J/4.
        vmc = MarshallJastrowVmc(model, alpha=0.3)
        assert vmc.local_energy() < -model.n_sites / 4.0 + 1e-12
