"""The pluggable kernel registry: selection, errors, bit-identity.

Every registered backend must produce the *bit-identical* trajectory:
RNG draws stay in the callers, so a backend can only differ by the
order it evaluates the same accept inequalities -- and the compiled
backends replicate numpy's reduction order exactly.  This suite pins:

* registry semantics: priority-ordered ``auto`` selection, the
  ``vectorized`` alias, unknown-name errors, fake-backend registration;
* the structured :class:`KernelUnavailableError` (backend/reason
  attributes, actionable ``--kernel numpy`` fallback in the message);
* serial samplers: ``mode="numpy"`` is bit-identical to the legacy
  ``mode="vectorized"`` path, and -- where numba is installed -- the
  JIT backend is bit-identical to numpy on the chain, square-lattice
  and classical-Ising samplers;
* SPMD drivers: strip/block trajectories agree between numpy and numba
  kernels across P in {1, 2, 4}, overlap on/off, and the thread/mp
  backends, and a checkpoint written under one kernel resumes under
  the other bit for bit (the kernel is absent from the resume
  fingerprint, like the overlap knob);
* telemetry: per-sweep kernel time lands in a counter tagged by the
  backend name.

The numba legs skip cleanly where numba is not importable; CI's numba
job installs it and runs this file as its bit-identity gate.
"""

import numpy as np
import pytest

from repro import kernels
from repro.kernels import KernelBackend, KernelUnavailableError
from repro.models.hamiltonians import XXZChainModel, XXZSquareModel
from repro.obs import MetricsRegistry
from repro.qmc.classical_ising import AnisotropicIsing
from repro.qmc.parallel import (
    IsingBlockConfig,
    Worldline2DReplicaConfig,
    WorldlineStripConfig,
    ising_block_program,
    worldline_strip_program,
)
from repro.qmc.worldline import WorldlineChainQmc
from repro.qmc.worldline2d import WorldlineSquareQmc
from repro.run.checkpoint import CheckpointConfig
from repro.run.config import ParallelLayout
from repro.vmp.machines import PARAGON
from repro.vmp.scheduler import run_spmd
from tests.conftest import (
    BLOCK_KEYS,
    STRIP_KEYS,
    assert_bit_identical,
    run_driver_matrix,
)

HAVE_NUMBA = kernels.kernel_available("numba")
needs_numba = pytest.mark.skipif(not HAVE_NUMBA, reason="numba not installed")

#: Kernel pairs whose trajectories must agree (numpy against every
#: other available batched backend; just the alias pair without numba).
PAIRS = [("vectorized", "numpy")] + (
    [("numpy", "numba")] if HAVE_NUMBA else []
)


# ======================================================================
# registry semantics
# ======================================================================


class TestRegistrySemantics:
    def test_numpy_always_registered_and_available(self):
        assert "numpy" in kernels.known_backends()
        assert kernels.kernel_available("numpy")
        assert "numpy" in kernels.available_backends()

    def test_known_backends_priority_ordered(self):
        names = kernels.known_backends()
        # numba (20) outranks numpy (10); the cupy stub (-10) sits last
        # so auto never drifts onto the GPU path by accident.
        assert names.index("numba") < names.index("numpy") < names.index("cupy")

    def test_auto_resolves_to_an_available_backend(self):
        assert kernels.resolve_kernel("auto") in kernels.available_backends()

    def test_vectorized_alias_resolves_to_numpy(self):
        assert kernels.resolve_kernel("vectorized") == "numpy"

    def test_scalar_passes_through_resolve_sweep_mode(self):
        assert kernels.resolve_sweep_mode("scalar") == "scalar"

    def test_unknown_name_raises_value_error(self):
        with pytest.raises(ValueError, match="unknown kernel backend 'simd'"):
            kernels.resolve_kernel("simd")
        with pytest.raises(ValueError, match="unknown sweep mode 'simd'"):
            kernels.resolve_sweep_mode("simd")

    def test_ops_table_complete(self):
        ops = kernels.get_ops("numpy")
        assert set(kernels.OP_NAMES) <= set(ops)
        assert all(callable(ops[n]) for n in kernels.OP_NAMES)

    def test_backend_version_reporting(self):
        assert kernels.backend_version("numpy") == np.__version__
        if not HAVE_NUMBA:
            assert kernels.backend_version("numba") is None

    def test_registered_fake_backend_wins_auto(self):
        fake = KernelBackend(
            name="fake-accel",
            priority=99,
            probe=lambda: True,
            loader=lambda: dict(kernels.get_ops("numpy")),
        )
        kernels.register_backend(fake)
        try:
            assert kernels.resolve_kernel("auto") == "fake-accel"
            assert set(kernels.OP_NAMES) <= set(kernels.get_ops("fake-accel"))
        finally:
            kernels.unregister_backend("fake-accel")
        assert kernels.resolve_kernel("auto") in ("numpy", "numba")

    def test_negative_priority_backend_never_auto_selected(self):
        fake = KernelBackend(
            name="fake-optin",
            priority=-1,
            probe=lambda: True,
            loader=lambda: dict(kernels.get_ops("numpy")),
        )
        kernels.register_backend(fake)
        try:
            assert kernels.resolve_kernel("auto") != "fake-optin"
            assert kernels.resolve_kernel("fake-optin") == "fake-optin"
        finally:
            kernels.unregister_backend("fake-optin")

    def test_incomplete_op_table_rejected(self):
        fake = KernelBackend(
            name="fake-broken",
            priority=-1,
            probe=lambda: True,
            loader=lambda: {"wl1d_corner": lambda *a: 0},
        )
        kernels.register_backend(fake)
        try:
            with pytest.raises(KernelUnavailableError, match="missing"):
                kernels.get_ops("fake-broken")
        finally:
            kernels.unregister_backend("fake-broken")


class TestStructuredError:
    def test_attributes_and_message(self):
        err = KernelUnavailableError("numba", "not importable")
        assert isinstance(err, RuntimeError)
        assert err.backend == "numba"
        assert err.reason == "not importable"
        assert "--kernel numpy" in str(err)

    def test_unavailable_backend_raises_structured_error(self):
        fake = KernelBackend(
            name="fake-gpu",
            priority=-5,
            probe=lambda: False,
            loader=lambda: {},
            requires="fakepkg",
        )
        kernels.register_backend(fake)
        try:
            with pytest.raises(KernelUnavailableError) as exc:
                kernels.resolve_kernel("fake-gpu")
            assert exc.value.backend == "fake-gpu"
            assert "fakepkg" in str(exc.value)
            assert "--kernel numpy" in str(exc.value)
        finally:
            kernels.unregister_backend("fake-gpu")

    @pytest.mark.skipif(kernels.kernel_available("cupy"),
                        reason="cupy installed here")
    def test_cupy_unavailable_is_structured_and_actionable(self):
        with pytest.raises(KernelUnavailableError) as exc:
            kernels.resolve_kernel("cupy")
        assert exc.value.backend == "cupy"
        assert "--kernel numpy" in str(exc.value)

    def test_probe_exceptions_mean_unavailable_not_crash(self):
        def bad_probe():
            raise ImportError("broken install")

        fake = KernelBackend(
            name="fake-bad", priority=-5, probe=bad_probe, loader=lambda: {}
        )
        kernels.register_backend(fake)
        try:
            assert not kernels.kernel_available("fake-bad")
        finally:
            kernels.unregister_backend("fake-bad")


# ======================================================================
# configuration surfaces
# ======================================================================


class TestConfigSurfaces:
    def test_layout_accepts_registry_names(self):
        for name in ("auto", "scalar", "vectorized", "numpy", "numba", "cupy"):
            assert ParallelLayout(kernel=name).kernel == name

    def test_layout_rejects_unknown_kernel(self):
        with pytest.raises(ValueError, match="unknown kernel 'bogus'"):
            ParallelLayout(kernel="bogus")

    def test_strip_config_accepts_backend_modes(self):
        cfg = WorldlineStripConfig(n_sites=8, jz=1, jxy=1, beta=1, n_slices=8,
                                   n_sweeps=1, mode="numpy")
        assert cfg.mode == "numpy"
        with pytest.raises(ValueError, match="unknown sweep mode"):
            WorldlineStripConfig(n_sites=8, jz=1, jxy=1, beta=1, n_slices=8,
                                 n_sweeps=1, mode="simd")

    def test_block_config_accepts_backend_modes(self):
        cfg = IsingBlockConfig(lx=4, ly=4, lt=4, kx=0.2, ky=0.2, kt=0.3,
                               n_sweeps=1, mode="numpy")
        assert cfg.mode == "numpy"

    def test_replica_config_accepts_backend_modes(self):
        cfg = Worldline2DReplicaConfig(lx=4, ly=4, beta=1.0, n_slices=8,
                                       mode="numpy")
        assert cfg.mode == "numpy"

    def test_divisibility_error_names_scalar_fallback(self):
        model = XXZSquareModel(2, 4)
        q = WorldlineSquareQmc(model, beta=1.0, n_slices=8, seed=0)
        assert not q.can_vectorize
        with pytest.raises(ValueError, match="scalar"):
            q.sweep_vectorized()

    @pytest.mark.skipif(kernels.kernel_available("cupy"),
                        reason="cupy installed here")
    def test_cli_kernel_cupy_exits_2_with_message(self, capsys):
        from repro.cli import main

        rc = main(["run-xxz", "--sites", "8", "--beta", "1.0",
                   "--sweeps", "4", "--thermalize", "1", "--kernel", "cupy"])
        assert rc == 2
        err = capsys.readouterr().err
        assert "cupy" in err and "--kernel numpy" in err


# ======================================================================
# serial bit-identity
# ======================================================================


def _chain(seed=3):
    return WorldlineChainQmc(XXZChainModel(8), beta=0.9, n_slices=8, seed=seed)


def _square(seed=5):
    return WorldlineSquareQmc(XXZSquareModel(4, 4), beta=0.8, n_slices=8,
                              seed=seed)


@pytest.mark.parametrize("ref_mode,got_mode", PAIRS)
class TestSerialBitIdentity:
    def test_chain_trajectories_identical(self, ref_mode, got_mode):
        a, b = _chain(), _chain()
        for _ in range(6):
            a.sweep(mode=ref_mode)
            b.sweep(mode=got_mode)
        np.testing.assert_array_equal(a.spins, b.spins)
        assert a.n_attempted == b.n_attempted
        assert a.n_accepted == b.n_accepted
        b.check_invariants()

    def test_square_trajectories_identical(self, ref_mode, got_mode):
        a, b = _square(), _square()
        for _ in range(6):
            a.sweep(mode=ref_mode)
            b.sweep(mode=got_mode)
        np.testing.assert_array_equal(a.spins, b.spins)
        assert a.n_attempted == b.n_attempted
        assert a.n_accepted == b.n_accepted
        b.check_invariants()

    def test_ising_trajectories_identical(self, ref_mode, got_mode):
        kern = {"vectorized": "numpy"}.get  # the Ising sampler has no alias
        a = AnisotropicIsing((6, 6, 4), (0.3, 0.3, 0.4), seed=7, hot_start=True,
                             kernel=kern(ref_mode, ref_mode))
        b = AnisotropicIsing((6, 6, 4), (0.3, 0.3, 0.4), seed=7, hot_start=True,
                             kernel=kern(got_mode, got_mode))
        for _ in range(8):
            a.sweep()
            b.sweep()
        np.testing.assert_array_equal(a.spins, b.spins)
        assert a.n_accepted == b.n_accepted


@needs_numba
class TestNumbaSerialShapes:
    """Geometry corners the fixed-signature JIT kernels must cover."""

    def test_ising_2d_lifted_to_3d(self):
        a = AnisotropicIsing((8, 8), (0.35, 0.35), seed=11, hot_start=True,
                             kernel="numpy")
        b = AnisotropicIsing((8, 8), (0.35, 0.35), seed=11, hot_start=True,
                             kernel="numba")
        for _ in range(8):
            a.sweep()
            b.sweep()
        np.testing.assert_array_equal(a.spins, b.spins)
        assert a.n_accepted == b.n_accepted

    def test_pairwise_sum_replicates_numpy(self):
        from repro.kernels.numba_backend import _pairwise_sum

        rng = np.random.default_rng(0)
        for n in (1, 5, 8, 9, 64, 127, 128, 129, 500, 4096):
            a = rng.standard_normal(n) * 10.0 ** rng.integers(-8, 8, size=n)
            assert _pairwise_sum(a, 0, n) == np.sum(a), n

    def test_square_larger_lattice(self):
        a = WorldlineSquareQmc(XXZSquareModel(8, 4), beta=1.1, n_slices=12,
                               seed=13)
        b = WorldlineSquareQmc(XXZSquareModel(8, 4), beta=1.1, n_slices=12,
                               seed=13)
        for _ in range(4):
            a.sweep(mode="numpy")
            b.sweep(mode="numba")
        np.testing.assert_array_equal(a.spins, b.spins)
        assert a.n_accepted == b.n_accepted
        b.check_invariants()


# ======================================================================
# SPMD drivers
# ======================================================================


def _strip_cfg(mode, overlap=False, n_sweeps=5):
    return WorldlineStripConfig(
        n_sites=16, jz=1.0, jxy=0.8, beta=0.9, n_slices=8,
        n_sweeps=n_sweeps, n_thermalize=1, mode=mode, overlap=overlap,
    )


def _block_cfg(mode, overlap=False, n_sweeps=5):
    return IsingBlockConfig(
        lx=8, ly=8, lt=4, kx=0.25, ky=0.25, kt=0.4,
        n_sweeps=n_sweeps, n_thermalize=1, mode=mode, overlap=overlap,
    )


def _run_strip(p, mode, overlap=False, backend="thread", ckpt=None, n_sweeps=5):
    return run_driver_matrix(
        worldline_strip_program, p, _strip_cfg(mode, overlap, n_sweeps),
        seed=21, backend=backend, checkpoint=ckpt,
    )


def _run_block(p, mode, overlap=False, backend="thread", ckpt=None, n_sweeps=5):
    return run_driver_matrix(
        ising_block_program, p, _block_cfg(mode, overlap, n_sweeps),
        seed=21, backend=backend, checkpoint=ckpt,
    )


@pytest.mark.parametrize("p", [1, 2, 4])
class TestDriverKernelAgreement:
    def test_strip_numpy_matches_vectorized_alias(self, p):
        assert_bit_identical(_run_strip(p, "vectorized"), _run_strip(p, "numpy"),
                     STRIP_KEYS)

    def test_block_numpy_matches_vectorized_alias(self, p):
        assert_bit_identical(_run_block(p, "vectorized"), _run_block(p, "numpy"),
                     BLOCK_KEYS)

    @needs_numba
    @pytest.mark.parametrize("overlap", [False, True])
    def test_strip_numba_matches_numpy(self, p, overlap):
        assert_bit_identical(_run_strip(p, "numpy", overlap),
                     _run_strip(p, "numba", overlap), STRIP_KEYS)

    @needs_numba
    @pytest.mark.parametrize("overlap", [False, True])
    def test_block_numba_matches_numpy(self, p, overlap):
        assert_bit_identical(_run_block(p, "numpy", overlap),
                     _run_block(p, "numba", overlap), BLOCK_KEYS)


@needs_numba
@pytest.mark.tier1_fault
class TestNumbaAcrossProcessBackends:
    def test_strip_numba_mp_matches_numpy_thread(self):
        assert_bit_identical(_run_strip(2, "numpy", backend="thread"),
                     _run_strip(2, "numba", backend="mp"), STRIP_KEYS)

    def test_block_numba_mp_matches_numpy_thread(self):
        assert_bit_identical(_run_block(2, "numpy", backend="thread"),
                     _run_block(2, "numba", backend="mp"), BLOCK_KEYS)


@needs_numba
class TestResumeWithKernelToggled:
    """The kernel is not part of the resume fingerprint (like overlap)."""

    @pytest.mark.parametrize("save_mode,resume_mode",
                             [("numpy", "numba"), ("numba", "numpy")])
    def test_strip_resume_toggles_kernel(self, tmp_path, save_mode,
                                         resume_mode):
        ref = _run_strip(2, "numpy", n_sweeps=6).values[0]
        d = tmp_path / "ck"
        _run_strip(2, save_mode, ckpt=CheckpointConfig(d, every=3), n_sweeps=3)
        resumed = _run_strip(
            2, resume_mode, ckpt=CheckpointConfig(d, resume=True), n_sweeps=6
        ).values[0]
        for k in STRIP_KEYS:
            np.testing.assert_array_equal(resumed[k], ref[k], err_msg=k)

    def test_block_resume_toggles_kernel(self, tmp_path):
        ref = _run_block(2, "numpy", n_sweeps=6).values[0]
        d = tmp_path / "ck"
        _run_block(2, "numpy", ckpt=CheckpointConfig(d, every=3), n_sweeps=3)
        resumed = _run_block(
            2, "numba", ckpt=CheckpointConfig(d, resume=True), n_sweeps=6
        ).values[0]
        for k in BLOCK_KEYS:
            np.testing.assert_array_equal(resumed[k], ref[k], err_msg=k)


# ======================================================================
# telemetry
# ======================================================================


class TestKernelTelemetry:
    def test_serial_sweep_time_tagged_by_backend(self):
        reg = MetricsRegistry(interval=1)
        q = WorldlineSquareQmc(XXZSquareModel(4, 4), beta=0.8, n_slices=8,
                               seed=5, metrics=reg.scope(0))
        q.sweep(mode="numpy")
        summary = reg.summary()[0]
        assert summary["sweep.kernel_seconds.numpy"] > 0.0

    def test_strip_driver_records_kernel_counter(self):
        reg = MetricsRegistry(interval=1)
        run_spmd(worldline_strip_program, 2, machine=PARAGON, seed=21,
                 args=(_strip_cfg("numpy"), None), metrics=reg)
        for rank in reg.ranks:
            assert reg.summary()[rank]["sweep.kernel_seconds.numpy"] > 0.0

    def test_block_driver_records_kernel_counter(self):
        reg = MetricsRegistry(interval=1)
        run_spmd(ising_block_program, 2, machine=PARAGON, seed=21,
                 args=(_block_cfg("numpy"), None), metrics=reg)
        for rank in reg.ranks:
            assert reg.summary()[rank]["sweep.kernel_seconds.numpy"] > 0.0
