"""Tests for the vectorized checkerboard classical Ising sampler."""

import itertools

import numpy as np
import pytest

from repro.models.ising_exact import onsager_energy_per_site
from repro.qmc.classical_ising import AnisotropicIsing


class TestConstruction:
    def test_odd_extent_rejected(self):
        with pytest.raises(ValueError):
            AnisotropicIsing((5, 4), (1.0, 1.0))

    def test_coupling_count_mismatch(self):
        with pytest.raises(ValueError):
            AnisotropicIsing((4, 4), (1.0,))

    def test_inert_axis_requires_zero_coupling(self):
        AnisotropicIsing((4, 1, 4), (1.0, 0.0, 1.0))  # ok
        with pytest.raises(ValueError, match="zero coupling"):
            AnisotropicIsing((4, 1, 4), (1.0, 0.5, 1.0))

    def test_cold_and_hot_start(self):
        cold = AnisotropicIsing((4, 4), (0.5, 0.5))
        assert np.all(cold.spins == 1)
        hot = AnisotropicIsing((8, 8), (0.5, 0.5), hot_start=True, seed=1)
        assert set(np.unique(hot.spins)) == {-1, 1}


class TestLocalField:
    def test_aligned_lattice_field(self):
        s = AnisotropicIsing((4, 4), (0.3, 0.7))
        # All spins +1: field = 2*(0.3 + 0.7) everywhere.
        np.testing.assert_allclose(s.local_field(), 2.0)

    def test_single_flip_field(self):
        s = AnisotropicIsing((4, 4), (1.0, 0.0))
        s.spins[0, 0] = -1
        f = s.local_field()
        # Neighbors of (0,0) along x lose 2 each.
        assert f[1, 0] == pytest.approx(0.0)
        assert f[3, 0] == pytest.approx(0.0)
        assert f[2, 0] == pytest.approx(2.0)


class TestSweep:
    def test_zero_coupling_is_random_flips(self):
        s = AnisotropicIsing((8, 8), (0.0, 0.0), seed=2)
        for _ in range(5):
            s.sweep()
        # Free spins: every proposal accepted.
        assert s.acceptance_rate == pytest.approx(1.0)

    def test_strong_coupling_freezes(self):
        s = AnisotropicIsing((8, 8), (10.0, 10.0), seed=3)
        for _ in range(5):
            s.sweep()
        assert np.all(s.spins == 1)

    def test_uniforms_shape_checked(self):
        s = AnisotropicIsing((4, 4), (0.5, 0.5))
        with pytest.raises(ValueError):
            s.sweep(uniforms=np.zeros((2, 2)))

    def test_supplied_uniforms_reproducible(self):
        a = AnisotropicIsing((6, 6), (0.4, 0.4), hot_start=True, seed=5)
        b = AnisotropicIsing((6, 6), (0.4, 0.4), hot_start=True, seed=5)
        u = np.random.default_rng(0).random((6, 6))
        a.sweep(uniforms=u)
        b.sweep(uniforms=u)
        np.testing.assert_array_equal(a.spins, b.spins)


class TestObservables:
    def test_bond_sums_aligned(self):
        s = AnisotropicIsing((4, 6), (1.0, 1.0))
        assert s.bond_sum(0) == 24  # one x-bond per site
        assert s.bond_sum(1) == 24

    def test_reduced_energy_aligned(self):
        s = AnisotropicIsing((4, 4), (0.5, 0.25))
        assert s.reduced_energy() == pytest.approx(-(0.5 * 16 + 0.25 * 16))

    def test_magnetization(self):
        s = AnisotropicIsing((4, 4), (0.0, 0.0))
        assert s.magnetization() == 1.0
        s.spins[:2] = -1
        assert s.magnetization() == 0.0

    def test_run_returns_series(self):
        s = AnisotropicIsing((4, 4), (0.2, 0.2), seed=7)
        obs = s.run(n_sweeps=20, n_thermalize=5, measure_every=2)
        assert obs.n_measurements == 10
        assert obs.bond_sums.shape == (10, 2)
        assert np.all(np.abs(obs.magnetization) <= 1.0)


class TestExactDistributionTinyLattice:
    def test_2x2_boltzmann_distribution(self):
        """Empirical stationary distribution on a 2x2 lattice vs exact.

        The strongest possible correctness check of the update rule:
        every one of the 16 configurations must appear with its exact
        Boltzmann probability.  Note the 2x2 periodic lattice double
        counts bonds (both neighbors along an axis coincide), which the
        sampler and this enumeration treat identically.
        """
        k = (0.25, 0.15)
        s = AnisotropicIsing((2, 2), k, seed=11, hot_start=True)

        def reduced_energy(spins):
            e = 0.0
            for a in range(2):
                e -= k[a] * np.sum(spins * np.roll(spins, -1, axis=a))
            return e

        # exact probabilities
        weights = {}
        for bits in itertools.product((-1, 1), repeat=4):
            cfg = np.array(bits, dtype=np.int8).reshape(2, 2)
            weights[bits] = np.exp(-reduced_energy(cfg))
        z = sum(weights.values())

        counts = {b: 0 for b in weights}
        n = 40000
        for _ in range(n):
            s.sweep()
            counts[tuple(s.spins.ravel().tolist())] += 1
        for bits, w in weights.items():
            p_exact = w / z
            p_emp = counts[bits] / n
            # ~4 sigma multinomial window (+ small autocorrelation slack)
            sigma = np.sqrt(p_exact * (1 - p_exact) / n)
            assert abs(p_emp - p_exact) < 6 * sigma + 0.004, (
                f"config {bits}: {p_emp:.4f} vs {p_exact:.4f}"
            )


@pytest.mark.slow
class TestOnsagerValidation:
    def test_energy_above_tc(self):
        beta = 0.3  # T ~ 3.33 > Tc: fast mixing
        s = AnisotropicIsing((16, 16), (beta, beta), seed=13, hot_start=True)
        obs = s.run(n_sweeps=4000, n_thermalize=500)
        e_per_site = -(obs.bond_sums.sum(axis=1) / beta) * beta / 256
        # energy per site = -(bx + by)/N (J=1).
        e_mean = float(np.mean(-(obs.bond_sums[:, 0] + obs.bond_sums[:, 1]) / 256))
        ref = onsager_energy_per_site(beta)
        # Finite-size corrections at L=16 above Tc are small (<1%).
        assert e_mean == pytest.approx(ref, abs=0.03)

    def test_magnetization_below_tc(self):
        from repro.models.ising_exact import onsager_spontaneous_magnetization

        beta = 0.6  # well below Tc: ordered
        s = AnisotropicIsing((16, 16), (beta, beta), seed=17)
        obs = s.run(n_sweeps=3000, n_thermalize=500)
        m = float(np.mean(obs.abs_magnetization))
        assert m == pytest.approx(onsager_spontaneous_magnetization(beta), abs=0.02)
