"""Tests for the exact plaquette weight tables."""

import numpy as np
import pytest
from scipy.linalg import expm

from repro.qmc.plaquette import (
    CODE_DD,
    CODE_DU_DU,
    CODE_DU_UD,
    CODE_UD_DU,
    CODE_UD_UD,
    CODE_UU,
    LEGAL_CODES,
    PlaquetteTable,
    encode_corners,
)


def two_site_propagator(jz, jxy_eff, dtau):
    """Dense exp(-dtau h) in basis (dd, ud, du, uu), site 1 = low bit."""
    sz = np.diag([-0.5, 0.5])
    sp = np.array([[0.0, 0.0], [1.0, 0.0]])
    sm = sp.T

    def k(a, b):  # site1 low bit: kron(site2, site1)
        return np.kron(b, a)

    h = jz * k(sz, sz) + (jxy_eff / 2.0) * (k(sp, sm) + k(sm, sp))
    return expm(-dtau * h)


class TestEncoding:
    def test_encode_corners(self):
        assert encode_corners(1, 0, 1, 0) == CODE_UD_UD
        assert encode_corners(0, 0, 0, 0) == CODE_DD
        assert encode_corners(1, 1, 1, 1) == CODE_UU
        assert encode_corners(1, 0, 0, 1) == CODE_UD_DU

    def test_encode_vectorized(self):
        bl = np.array([1, 0])
        out = encode_corners(bl, 1 - bl, 1 - bl, bl)
        np.testing.assert_array_equal(out, [CODE_UD_DU, CODE_DU_UD])


@pytest.mark.parametrize(
    "jz,jxy,dtau",
    [
        (1.0, 1.0, 0.1),  # Heisenberg AFM
        (1.0, -1.0, 0.1),  # Heisenberg FM xy-part
        (0.5, 1.0, 0.05),  # XXZ
        (0.0, 1.0, 0.2),  # XY
        (1.0, 0.0, 0.1),  # Ising
        (2.0, 0.3, 0.25),
    ],
)
class TestAgainstMatrixExponential:
    def test_weights_match_expm(self, jz, jxy, dtau):
        table = PlaquetteTable.build(jz, jxy, dtau)
        jxy_eff = -abs(jxy)  # Marshall rotation applied by the table
        exact = two_site_propagator(jz, jxy_eff, dtau)
        np.testing.assert_allclose(table.as_matrix(), exact, atol=1e-14)

    def test_dlog_matches_finite_difference(self, jz, jxy, dtau):
        eps = 1e-7
        t0 = PlaquetteTable.build(jz, jxy, dtau)
        t1 = PlaquetteTable.build(jz, jxy, dtau + eps)
        for code in LEGAL_CODES:
            if t0.weights[code] == 0.0:
                continue  # jump weight vanishes at jxy = 0
            fd = (np.log(t1.weights[code]) - np.log(t0.weights[code])) / eps
            assert t0.dlog[code] == pytest.approx(fd, rel=1e-4, abs=1e-6)

    def test_illegal_codes_have_zero_weight(self, jz, jxy, dtau):
        table = PlaquetteTable.build(jz, jxy, dtau)
        for code in range(16):
            if code not in LEGAL_CODES:
                assert table.weights[code] == 0.0
                assert not table.is_legal(code)

    def test_legal_weights_positive(self, jz, jxy, dtau):
        table = PlaquetteTable.build(jz, jxy, dtau)
        for code in (CODE_DD, CODE_UU, CODE_UD_UD, CODE_DU_DU):
            assert table.weights[code] > 0


class TestSpecialCases:
    def test_marshall_flag(self):
        assert PlaquetteTable.build(1.0, 1.0, 0.1).marshall_rotated
        assert not PlaquetteTable.build(1.0, -1.0, 0.1).marshall_rotated
        assert not PlaquetteTable.build(1.0, 0.0, 0.1).marshall_rotated

    def test_ising_limit_no_jumps(self):
        t = PlaquetteTable.build(1.0, 0.0, 0.1)
        assert t.weights[CODE_UD_DU] == 0.0
        assert t.weights[CODE_DU_UD] == 0.0

    def test_propagator_symmetry(self):
        # exp(-dtau h) is symmetric for the (rotated) real h.
        m = PlaquetteTable.build(0.7, 1.3, 0.15).as_matrix()
        np.testing.assert_allclose(m, m.T)

    def test_invalid_dtau_rejected(self):
        with pytest.raises(ValueError):
            PlaquetteTable.build(1.0, 1.0, 0.0)

    def test_spin_flip_symmetry(self):
        # Global up-down flip maps codes (bl,br,tl,tr)->(1-..): weight equal.
        t = PlaquetteTable.build(0.9, 1.1, 0.2)
        assert t.weights[CODE_UD_UD] == t.weights[CODE_DU_DU]
        assert t.weights[CODE_UD_DU] == t.weights[CODE_DU_UD]
        assert t.weights[CODE_DD] == t.weights[CODE_UU]
