"""Tests for the world-line XXZ sampler.

Statistical validations compare against the *matrix-product Trotter
reference* (the exact quantity the sampler estimates at finite dtau),
so the acceptance windows are purely statistical.
"""

import numpy as np
import pytest

from repro.models.hamiltonians import XXZChainModel
from repro.models.trotter_ref import trotter_reference_energy
from repro.qmc.worldline import WorldlineChainQmc
from repro.stats.binning import BinningAnalysis

from tests.conftest import assert_within


def make(n_sites=4, beta=1.0, n_slices=8, periodic=False, jz=1.0, jxy=1.0, seed=0):
    model = XXZChainModel(n_sites=n_sites, jz=jz, jxy=jxy, periodic=periodic)
    return WorldlineChainQmc(model, beta=beta, n_slices=n_slices, seed=seed)


class TestConstruction:
    def test_geometry(self):
        q = make(n_sites=6, n_slices=12)
        assert q.n_trotter == 6
        assert q.dtau == pytest.approx(1.0 / 6.0)
        assert q.spins.shape == (6, 12)

    def test_neel_start_is_legal(self):
        q = make()
        assert np.isfinite(q.config_log_weight())
        q.check_invariants()

    def test_field_rejected(self):
        model = XXZChainModel(n_sites=4, field=0.5, periodic=False)
        with pytest.raises(ValueError, match="zero field"):
            WorldlineChainQmc(model, 1.0, 8)

    def test_odd_slices_rejected(self):
        with pytest.raises(ValueError):
            make(n_slices=7)

    def test_vectorization_guard(self):
        assert make(n_sites=8, periodic=True, n_slices=8).can_vectorize
        assert not make(n_sites=4, periodic=False).can_vectorize
        with pytest.raises(ValueError, match="vectorized sweep needs"):
            make(n_sites=4, periodic=False).sweep_vectorized()


class TestMoves:
    def test_corner_flip_preserves_legality(self):
        q = make(seed=3)
        for _ in range(60):
            q.sweep_scalar()
            q.check_invariants()

    def test_shaded_plaquette_rejected_as_move_target(self):
        q = make()
        with pytest.raises(ValueError, match="shaded"):
            q.attempt_corner_flip(0, 0)  # (0+0) even = shaded

    def test_edge_flip_on_periodic_rejected(self):
        q = make(periodic=True, n_sites=4, n_slices=8)
        with pytest.raises(ValueError, match="open chains"):
            q.attempt_edge_flip(0, 1)

    def test_edge_flip_interior_site_rejected(self):
        q = make()
        with pytest.raises(ValueError, match="boundary"):
            q.attempt_edge_flip(1, 1)

    def test_column_flip_requires_straight_line(self):
        q = make(seed=5)
        # Kink up a configuration, find a non-straight column.
        for _ in range(30):
            q.sweep_scalar()
        bent = [i for i in range(q.L) if q.spins[i].min() != q.spins[i].max()]
        if bent:
            assert q.attempt_column_flip(bent[0]) is False

    def test_column_flip_changes_magnetization(self):
        q = make(seed=1)
        before = q.magnetization()
        # Columns start straight (Neel): a successful flip moves M by 1.
        moved = q.attempt_column_flip(0)
        if moved:
            assert abs(q.magnetization() - before) == pytest.approx(1.0)

    def test_acceptance_rate_reasonable(self):
        q = make(beta=0.5, seed=2)
        for _ in range(100):
            q.sweep()
        assert 0.02 < q.acceptance_rate < 0.9


class TestDetailedBalanceProperty:
    def test_corner_flip_acceptance_matches_weight_ratio(self):
        # For each accepted/rejected proposal the weight ratio computed
        # from config_log_weight (global) must equal the local ratio the
        # sampler used -- run moves manually and cross-check.
        q = make(seed=7)
        rng = np.random.default_rng(0)
        for _ in range(40):
            i = int(rng.integers(0, q.n_bonds))
            t = int(rng.integers(0, q.n_slices))
            if (i + t) % 2 == 0:
                continue
            lw_before = q.config_log_weight()
            spins_before = q.spins.copy()
            moved = q.attempt_corner_flip(i, t)
            lw_after = q.config_log_weight()
            if moved:
                assert np.isfinite(lw_after)
            else:
                np.testing.assert_array_equal(q.spins, spins_before)
                assert lw_after == pytest.approx(lw_before)


class TestEstimators:
    def test_energy_estimate_finite(self):
        q = make()
        assert np.isfinite(q.energy_estimate())

    def test_magnetization_neel_is_zero(self):
        assert make().magnetization() == 0.0

    def test_szsz_r0_is_quarter(self):
        q = make(seed=4)
        for _ in range(20):
            q.sweep()
        assert q.szsz_correlation()[0] == pytest.approx(0.25)

    def test_staggered_magnetization_of_neel(self):
        q = make()
        assert q.staggered_magnetization_sq() == pytest.approx(0.25)


@pytest.mark.slow
class TestValidationAgainstTrotterReference:
    def test_open_chain_energy(self):
        model = XXZChainModel(n_sites=4, periodic=False)
        beta, n_slices = 1.0, 8
        q = WorldlineChainQmc(model, beta, n_slices, seed=11)
        meas = q.run(n_sweeps=6000, n_thermalize=500)
        ba = BinningAnalysis.from_series(meas.energy)
        ref = trotter_reference_energy(model, beta, n_slices // 2)
        assert_within(ba.mean, ref, ba.error, n_sigma=4.5, label="open-chain E")

    def test_periodic_chain_energy_vectorized(self):
        model = XXZChainModel(n_sites=8, periodic=True)
        beta, n_slices = 0.5, 8
        q = WorldlineChainQmc(model, beta, n_slices, seed=13)
        assert q.can_vectorize
        meas = q.run(n_sweeps=5000, n_thermalize=400)
        ba = BinningAnalysis.from_series(meas.energy)
        ref = trotter_reference_energy(model, beta, n_slices // 2)
        # Winding sectors are absent from the sampler; at L=8, beta=0.5
        # the bias is far below the statistical resolution.
        assert_within(ba.mean, ref, ba.error, n_sigma=4.5, label="PBC E")

    def test_xxz_anisotropy(self):
        model = XXZChainModel(n_sites=4, jz=0.5, jxy=1.0, periodic=False)
        q = WorldlineChainQmc(model, 1.0, 8, seed=17)
        meas = q.run(n_sweeps=6000, n_thermalize=500)
        ba = BinningAnalysis.from_series(meas.energy)
        ref = trotter_reference_energy(model, 1.0, 4)
        assert_within(ba.mean, ref, ba.error, n_sigma=4.5, label="XXZ E")

    def test_scalar_and_vectorized_agree(self):
        model = XXZChainModel(n_sites=4, periodic=True)
        qv = WorldlineChainQmc(model, 0.5, 8, seed=19)
        qs = WorldlineChainQmc(model, 0.5, 8, seed=23)
        ev, es = [], []
        for _ in range(300):
            qv.sweep_vectorized()
        for _ in range(3000):
            qv.sweep_vectorized()
            ev.append(qv.energy_estimate())
        for _ in range(300):
            qs.sweep_scalar()
        for _ in range(3000):
            qs.sweep_scalar()
            es.append(qs.energy_estimate())
        bv = BinningAnalysis.from_series(np.array(ev))
        bs = BinningAnalysis.from_series(np.array(es))
        err = np.hypot(bv.error, bs.error)
        assert_within(bv.mean, bs.mean, err, n_sigma=4.5,
                      label="scalar vs vectorized")

    def test_susceptibility_against_ed(self):
        from repro.models.ed import ExactDiagonalization

        model = XXZChainModel(n_sites=4, periodic=False)
        beta = 0.5
        ed = ExactDiagonalization(model.build_sparse(), 4)
        chi_ref = ed.thermal(beta).susceptibility
        q = WorldlineChainQmc(model, beta, 12, seed=29)
        meas = q.run(n_sweeps=8000, n_thermalize=500)
        chi = meas.susceptibility(4)
        # Trotter bias on chi is O(dtau^2) ~ 1%; allow combined window.
        assert chi == pytest.approx(chi_ref, abs=0.15 * chi_ref)


@pytest.mark.slow
class TestImaginaryTimeCorrelation:
    def test_matches_ed(self):
        """G(tau) = <Sz_i(tau) Sz_i(0)> vs the exact spectral formula."""
        from repro.models.ed import ExactDiagonalization

        model = XXZChainModel(n_sites=4, periodic=False)
        ed = ExactDiagonalization(model.build_sparse(), 4)
        beta, n_slices = 1.0, 16
        q = WorldlineChainQmc(model, beta, n_slices, seed=2)
        samples = []
        for _ in range(400):
            q.sweep()
        for _ in range(3000):
            q.sweep()
            samples.append(q.szsz_time_correlation())
        g = np.mean(samples, axis=0)
        err = np.std(samples, axis=0, ddof=1) / np.sqrt(len(samples))
        assert g[0] == pytest.approx(0.25)
        for k in (2, 4, 8):
            tau = k * beta / n_slices
            g_ed = np.mean(
                [ed.imaginary_time_correlation_zz(i, tau, beta) for i in range(4)]
            )
            # Correlated samples: inflate the naive error generously.
            assert abs(float(g[k]) - g_ed) < 10 * float(err[k]) + 0.003, f"k={k}"

    def test_symmetric_around_beta_half(self):
        # G(tau) = G(beta - tau) for Hermitian Sz: the slice correlator
        # at separation k equals the one at T - k by construction of the
        # periodic trace -- check the ED formula's symmetry instead.
        from repro.models.ed import ExactDiagonalization

        model = XXZChainModel(n_sites=4, periodic=False)
        ed = ExactDiagonalization(model.build_sparse(), 4)
        beta = 1.3
        a = ed.imaginary_time_correlation_zz(1, 0.3, beta)
        b = ed.imaginary_time_correlation_zz(1, beta - 0.3, beta)
        assert a == pytest.approx(b, rel=1e-10)

    def test_monotone_decay_to_beta_half(self):
        from repro.models.ed import ExactDiagonalization

        model = XXZChainModel(n_sites=4, periodic=False)
        ed = ExactDiagonalization(model.build_sparse(), 4)
        beta = 1.0
        taus = [0.0, 0.2, 0.4, 0.5]
        vals = [ed.imaginary_time_correlation_zz(0, t, beta) for t in taus]
        assert all(x >= y - 1e-12 for x, y in zip(vals, vals[1:]))


class TestCorrelationFastPaths:
    """The FFT measurement paths must reproduce the roll loops exactly."""

    def _randomized(self, periodic):
        q = make(n_sites=8, n_slices=16, periodic=periodic, seed=71)
        for _ in range(40):
            q.sweep()
        return q

    def test_szsz_fft_equals_loop_periodic(self):
        q = self._randomized(periodic=True)
        np.testing.assert_allclose(
            q.szsz_correlation(method="fft"),
            q.szsz_correlation(method="loop"),
            atol=1e-12,
        )
        np.testing.assert_allclose(
            q.szsz_correlation(method="auto"),
            q.szsz_correlation(method="loop"),
            atol=1e-12,
        )

    def test_szsz_open_uses_loop(self):
        q = self._randomized(periodic=False)
        np.testing.assert_allclose(
            q.szsz_correlation(method="auto"),
            q.szsz_correlation(method="loop"),
            atol=1e-12,
        )
        with pytest.raises(ValueError, match="periodic"):
            q.szsz_correlation(method="fft")

    @pytest.mark.parametrize("periodic", [True, False])
    def test_time_correlation_fft_equals_loop(self, periodic):
        # Imaginary time is periodic regardless of the spatial geometry.
        q = self._randomized(periodic=periodic)
        np.testing.assert_allclose(
            q.szsz_time_correlation(method="fft"),
            q.szsz_time_correlation(method="loop"),
            atol=1e-12,
        )

    def test_unknown_method_rejected(self):
        q = self._randomized(periodic=True)
        with pytest.raises(ValueError, match="method"):
            q.szsz_correlation(method="rolls")
