"""Tests for the strip-decomposed world-line driver.

Since the shared-uniform rewrite the strip driver is **bit-identical**
across rank counts and across the scalar/vectorized kernel modes: every
rank draws the same per-(sweep, stage) lattice of uniforms, so seam
bonds are decided identically on both owners with no writeback.  The
checks are exact trajectory equality plus the original invariants
(legality, magnetization conservation) and statistical agreement with
the matrix-product Trotter reference.
"""

import dataclasses

import numpy as np
import pytest

from repro.models.hamiltonians import XXZChainModel
from repro.models.trotter_ref import trotter_reference_energy
from repro.qmc.parallel import WorldlineStripConfig, worldline_strip_program
from repro.qmc.plaquette import PlaquetteTable
from repro.stats.binning import BinningAnalysis
from repro.vmp.machines import IDEAL, PARAGON
from repro.vmp.scheduler import run_spmd

from tests.conftest import assert_within


def gather_spins(values):
    return np.concatenate([v["owned_spins"] for v in values], axis=0)


def check_global_invariants(spins, cfg):
    """Legality of every shaded plaquette + slice-magnetization conservation."""
    table = PlaquetteTable.build(cfg.jz, cfg.jxy, cfg.beta / (cfg.n_slices // 2))
    L, T = spins.shape
    for i in range(L):
        for t in range(T):
            if (i + t) % 2 == 0:
                j, t1 = (i + 1) % L, (t + 1) % T
                code = (
                    spins[i, t] + 2 * spins[j, t] + 4 * spins[i, t1] + 8 * spins[j, t1]
                )
                assert table.weights[code] > 0, f"illegal plaquette at ({i},{t})"
    mags = spins.sum(axis=0)
    assert np.all(mags == mags[0]), "slice magnetization not conserved"


SHORT = WorldlineStripConfig(
    n_sites=8, jz=1.0, jxy=1.0, beta=0.5, n_slices=8,
    n_sweeps=300, n_thermalize=50,
)


class TestConfigValidation:
    def test_requires_multiple_of_four(self):
        with pytest.raises(ValueError, match="L % 4"):
            WorldlineStripConfig(n_sites=6, jz=1, jxy=1, beta=1, n_slices=8,
                                 n_sweeps=1)
        with pytest.raises(ValueError, match="n_slices % 4"):
            WorldlineStripConfig(n_sites=8, jz=1, jxy=1, beta=1, n_slices=6,
                                 n_sweeps=1)

    def test_minimum_columns_per_rank(self):
        with pytest.raises(ValueError, match=">= 4 owned columns"):
            run_spmd(worldline_strip_program, 4, machine=IDEAL, args=(SHORT,))
        # 8 columns over 4 ranks = 2 per rank: rejected above; 2 ranks OK.


class TestModeAndRankIdentity:
    """Scalar reference vs vectorized kernels, across rank counts."""

    def test_mode_validated(self):
        with pytest.raises(ValueError, match="mode"):
            WorldlineStripConfig(n_sites=8, jz=1, jxy=1, beta=1, n_slices=8,
                                 n_sweeps=1, mode="simd")

    @pytest.mark.parametrize("p", [1, 2])
    def test_scalar_and_vectorized_trajectories_identical(self, p):
        spins, energies = {}, {}
        for mode in ("scalar", "vectorized"):
            cfg = dataclasses.replace(SHORT, n_sweeps=40, n_thermalize=10,
                                      mode=mode)
            res = run_spmd(worldline_strip_program, p, machine=IDEAL, seed=5,
                           args=(cfg,))
            spins[mode] = gather_spins(res.values)
            energies[mode] = np.asarray(res.values[0]["energy"])
            assert all(v["mode"] == mode for v in res.values)
        np.testing.assert_array_equal(spins["scalar"], spins["vectorized"])
        # Identical op order per stage => *exact* energy equality too.
        np.testing.assert_array_equal(energies["scalar"], energies["vectorized"])

    def test_trajectory_independent_of_rank_count(self):
        cfg = dataclasses.replace(SHORT, n_sites=16, n_sweeps=40,
                                  n_thermalize=10)
        ref_spins = ref_energy = None
        for p in (1, 2, 4):
            res = run_spmd(worldline_strip_program, p, machine=IDEAL, seed=5,
                           args=(cfg,))
            spins = gather_spins(res.values)
            energy = np.asarray(res.values[0]["energy"])
            if ref_spins is None:
                ref_spins, ref_energy = spins, energy
            else:
                np.testing.assert_array_equal(spins, ref_spins)
                # Spins are exact; the energy allreduce sums per-rank
                # partials whose float association depends on P, so the
                # series agrees to the last ULP but not bit-for-bit.
                np.testing.assert_allclose(energy, ref_energy, rtol=1e-12)


@pytest.mark.parametrize("p", [1, 2])
class TestInvariants:
    def test_configuration_stays_legal(self, p):
        res = run_spmd(worldline_strip_program, p, machine=IDEAL, seed=5,
                       args=(SHORT,))
        spins = gather_spins(res.values)
        check_global_invariants(spins, SHORT)

    def test_energy_series_identical_on_all_ranks(self, p):
        res = run_spmd(worldline_strip_program, p, machine=IDEAL, seed=5,
                       args=(SHORT,))
        for v in res.values[1:]:
            np.testing.assert_allclose(v["energy"], res.values[0]["energy"])


@pytest.mark.slow
class TestStatisticalAgreement:
    def test_p1_matches_trotter_reference(self):
        cfg = WorldlineStripConfig(
            n_sites=8, jz=1.0, jxy=1.0, beta=0.5, n_slices=8,
            n_sweeps=4000, n_thermalize=400,
        )
        model = XXZChainModel(n_sites=8, periodic=True)
        ref = trotter_reference_energy(model, cfg.beta, cfg.n_slices // 2)
        res = run_spmd(worldline_strip_program, 1, machine=IDEAL, seed=42,
                       args=(cfg,))
        ba = BinningAnalysis.from_series(res.values[0]["energy"])
        assert_within(ba.mean, ref, ba.error, n_sigma=4.5, label="strip P=1 E")

    def test_p2_matches_trotter_reference(self):
        cfg = WorldlineStripConfig(
            n_sites=8, jz=1.0, jxy=1.0, beta=0.5, n_slices=8,
            n_sweeps=1500, n_thermalize=200,
        )
        model = XXZChainModel(n_sites=8, periodic=True)
        ref = trotter_reference_energy(model, cfg.beta, cfg.n_slices // 2)
        res = run_spmd(worldline_strip_program, 2, machine=IDEAL, seed=43,
                       args=(cfg,))
        ba = BinningAnalysis.from_series(res.values[0]["energy"])
        assert_within(ba.mean, ref, ba.error, n_sigma=4.5, label="strip P=2 E")
        check_global_invariants(gather_spins(res.values), cfg)

    def test_p4_on_longer_chain(self):
        cfg = WorldlineStripConfig(
            n_sites=16, jz=1.0, jxy=1.0, beta=0.5, n_slices=8,
            n_sweeps=500, n_thermalize=100,
        )
        res = run_spmd(worldline_strip_program, 4, machine=PARAGON, seed=44,
                       args=(cfg,))
        check_global_invariants(gather_spins(res.values), cfg)
        assert res.comm_fraction() > 0  # halo traffic was charged
        # Cross-check P=1 on the same system within combined errors.
        res1 = run_spmd(worldline_strip_program, 1, machine=IDEAL, seed=45,
                        args=(cfg,))
        b4 = BinningAnalysis.from_series(res.values[0]["energy"])
        b1 = BinningAnalysis.from_series(res1.values[0]["energy"])
        err = float(np.hypot(b4.error, b1.error))
        assert_within(b4.mean, b1.mean, err, n_sigma=5.0, label="P=4 vs P=1")


# ======================================================================
# replica-parallel 2-D driver (batched kernels)
# ======================================================================

from repro.models.hamiltonians import XXZSquareModel
from repro.models.symmetry_ed import MomentumBlockED
from repro.qmc.parallel import (
    Worldline2DReplicaConfig,
    worldline2d_replica_flops_per_sweep,
    worldline2d_replica_program,
)
from repro.qmc.worldline2d import FLOPS_PER_SEGMENT_MOVE, WorldlineSquareQmc


REPLICA = Worldline2DReplicaConfig(
    lx=4, ly=4, beta=0.5, n_slices=16, n_sweeps=120, n_thermalize=30
)


class TestWorldline2DReplicaConfig:
    def test_geometry_validated(self):
        with pytest.raises(ValueError):
            Worldline2DReplicaConfig(lx=3, ly=4, beta=1.0, n_slices=8)

    def test_mode_validated(self):
        with pytest.raises(ValueError, match="mode"):
            Worldline2DReplicaConfig(lx=4, ly=4, beta=1.0, n_slices=8, mode="simd")


class TestWorldline2DReplica:
    @pytest.mark.parametrize("p", [1, 3])
    def test_series_identical_on_all_ranks(self, p):
        res = run_spmd(worldline2d_replica_program, p, args=(REPLICA,))
        vals = [o.value for o in res.outcomes]
        for v in vals[1:]:
            np.testing.assert_array_equal(v["energy"], vals[0]["energy"])
            np.testing.assert_array_equal(v["m_stag_sq"], vals[0]["m_stag_sq"])
        assert all(0.0 < v["acceptance"] < 1.0 for v in vals)

    def test_replica_configurations_stay_legal(self):
        res = run_spmd(worldline2d_replica_program, 2, args=(REPLICA,))
        model = XXZSquareModel(REPLICA.lx, REPLICA.ly)
        for o in res.outcomes:
            q = WorldlineSquareQmc(model, REPLICA.beta, REPLICA.n_slices)
            q.spins = o.value["spins"]
            q.check_invariants()

    def test_flops_charged_match_model(self):
        res = run_spmd(worldline2d_replica_program, 2, args=(REPLICA,), machine=PARAGON)
        sampler = WorldlineSquareQmc(
            XXZSquareModel(REPLICA.lx, REPLICA.ly), REPLICA.beta, REPLICA.n_slices
        )
        per_sweep = worldline2d_replica_flops_per_sweep(sampler)
        assert per_sweep == (
            sampler.n_bonds * sampler.n_trotter * FLOPS_PER_SEGMENT_MOVE
            + 2.0 * sampler.n_sites * sampler.n_slices
        )
        sweeps = REPLICA.n_sweeps + REPLICA.n_thermalize
        expected = sweeps * per_sweep / PARAGON.flops
        for o in res.outcomes:
            assert o.breakdown["compute"] == pytest.approx(expected)

    @pytest.mark.slow
    def test_replica_average_matches_symmetry_ed(self):
        cfg = Worldline2DReplicaConfig(
            lx=4, ly=4, beta=0.5, n_slices=16, n_sweeps=1500, n_thermalize=200
        )
        res = run_spmd(worldline2d_replica_program, 4, args=(cfg,))
        energy = res.outcomes[0].value["energy"]
        ref = MomentumBlockED(XXZSquareModel(4, 4)).thermal(cfg.beta)
        ba = BinningAnalysis.from_series(energy)
        # Same zero-winding-sector + Trotter allowance as the serial
        # agreement tests (see test_worldline2d_vectorized).
        assert_within(ba.mean, ref.energy, ba.error, n_sigma=4.0, atol=0.3,
                      label="replica-averaged energy vs ED")
