"""Tests for replica parallelism."""

import numpy as np
import pytest

from repro.qmc.classical_ising import AnisotropicIsing
from repro.qmc.replica import ReplicaConfig, combined_mean_error, replica_program
from repro.vmp.machines import CM5, IDEAL
from repro.vmp.scheduler import run_spmd


def ising_factory(stream):
    return AnisotropicIsing((8, 8), (0.3, 0.3), stream=stream, hot_start=True)


CFG = ReplicaConfig(
    sampler_factory=ising_factory,
    observables=("magnetization", "abs_magnetization"),
    n_sweeps=60,
    n_thermalize=20,
    flops_per_sweep=8 * 8 * 14.0,
)


class TestReplicaProgram:
    def test_pooled_mean_identical_on_all_ranks(self):
        res = run_spmd(replica_program, 4, machine=IDEAL, seed=3, args=(CFG,))
        pooled = [v["pooled_mean"]["abs_magnetization"] for v in res.values]
        assert len(set(pooled)) == 1

    def test_rank0_collects_all_series(self):
        res = run_spmd(replica_program, 3, machine=IDEAL, seed=3, args=(CFG,))
        series = res.values[0]["series"]
        assert set(series) == {"magnetization", "abs_magnetization"}
        assert len(series["magnetization"]) == 3
        assert all(len(s) == 60 for s in series["magnetization"])
        assert "series" not in res.values[1]

    def test_replicas_are_independent(self):
        res = run_spmd(replica_program, 3, machine=IDEAL, seed=3, args=(CFG,))
        series = res.values[0]["series"]["magnetization"]
        assert not np.array_equal(series[0], series[1])

    def test_pooled_mean_is_mean_of_replicas(self):
        res = run_spmd(replica_program, 3, machine=IDEAL, seed=3, args=(CFG,))
        series = res.values[0]["series"]["abs_magnetization"]
        manual = np.mean(np.concatenate(series))
        assert res.values[0]["pooled_mean"]["abs_magnetization"] == pytest.approx(
            manual
        )

    def test_compute_charged(self):
        res = run_spmd(replica_program, 2, machine=CM5, seed=3, args=(CFG,))
        assert res.category_seconds("compute") > 0


class TestCombinedMeanError:
    def test_known_replicas(self):
        series = [np.full(10, 1.0), np.full(10, 2.0), np.full(10, 3.0)]
        mean, err = combined_mean_error(series)
        assert mean == pytest.approx(2.0)
        assert err == pytest.approx(1.0 / np.sqrt(3))

    def test_single_replica_rejected(self):
        with pytest.raises(ValueError):
            combined_mean_error([np.arange(5.0)])

    def test_error_shrinks_with_replica_count(self, rng):
        series_many = [rng.normal(size=100) for _ in range(16)]
        series_few = series_many[:4]
        _, err_many = combined_mean_error(series_many)
        _, err_few = combined_mean_error(series_few)
        assert err_many < err_few
