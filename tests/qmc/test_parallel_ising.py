"""Tests for the block-decomposed classical Ising driver.

The headline check is **bit-identity**: given the shared per-sweep
uniforms, the domain-decomposed trajectory must equal the serial one
configuration-by-configuration, at every rank count.
"""

import dataclasses

import numpy as np
import pytest

from repro.qmc.classical_ising import AnisotropicIsing
from repro.qmc.parallel import IsingBlockConfig, ising_block_program
from repro.util.rng import SeedSequenceFactory
from repro.vmp.machines import IDEAL, PARAGON
from repro.vmp.scheduler import run_spmd


def serial_reference(cfg: IsingBlockConfig, n_sweeps_total: int) -> AnisotropicIsing:
    """Run the serial sampler with the exact uniforms the driver uses."""
    sampler = AnisotropicIsing(
        (cfg.lx, cfg.ly, cfg.lt), (cfg.kx, cfg.ky, cfg.kt), seed=0
    )
    factory = SeedSequenceFactory(cfg.sweep_seed)
    for k in range(n_sweeps_total):
        u = factory.stream("scratch", k).generator.random((cfg.lx, cfg.ly, cfg.lt))
        sampler.sweep(uniforms=u)
    return sampler


def gather_blocks(cfg: IsingBlockConfig, values: list[dict]) -> np.ndarray:
    out = np.empty((cfg.lx, cfg.ly, cfg.lt), dtype=np.int8)
    for v in values:
        x0, x1, y0, y1 = v["piece"]
        out[x0:x1, y0:y1] = v["block"]
    return out


CFG_2D = IsingBlockConfig(
    lx=8, ly=8, lt=4, kx=0.35, ky=0.25, kt=0.15,
    n_sweeps=12, n_thermalize=3, sweep_seed=99,
)

CFG_CHAIN = IsingBlockConfig(
    lx=8, ly=1, lt=8, kx=0.3, ky=0.0, kt=0.4,
    n_sweeps=10, n_thermalize=2, sweep_seed=7,
)


class TestBitIdentity:
    @pytest.mark.parametrize("p", [1, 2, 4])
    def test_2d_blocks_match_serial(self, p):
        res = run_spmd(ising_block_program, p, machine=IDEAL, seed=1, args=(CFG_2D,))
        parallel = gather_blocks(CFG_2D, res.values)
        serial = serial_reference(CFG_2D, CFG_2D.n_sweeps + CFG_2D.n_thermalize)
        np.testing.assert_array_equal(parallel, serial.spins)

    @pytest.mark.parametrize("p", [1, 2, 4])
    def test_chain_embedding_matches_serial(self, p):
        res = run_spmd(
            ising_block_program, p, machine=IDEAL, seed=1, args=(CFG_CHAIN,)
        )
        parallel = gather_blocks(CFG_CHAIN, res.values)
        serial = serial_reference(CFG_CHAIN, CFG_CHAIN.n_sweeps + CFG_CHAIN.n_thermalize)
        np.testing.assert_array_equal(parallel, serial.spins)

    def test_observable_series_identical_across_rank_counts(self):
        series = {}
        for p in (1, 4):
            res = run_spmd(ising_block_program, p, machine=IDEAL, seed=1,
                           args=(CFG_2D,))
            series[p] = (
                res.values[0]["magnetization"],
                res.values[0]["bond_sums"],
            )
        np.testing.assert_allclose(series[1][0], series[4][0], atol=1e-12)
        np.testing.assert_allclose(series[1][1], series[4][1], atol=1e-9)


class TestScalarMode:
    """The per-site scalar reference kernel cross-checks the masked one."""

    def test_mode_validated(self):
        with pytest.raises(ValueError, match="mode"):
            IsingBlockConfig(lx=4, ly=4, lt=4, kx=0.1, ky=0.1, kt=0.1,
                             n_sweeps=1, mode="simd")

    @pytest.mark.parametrize("p", [1, 2, 4])
    def test_scalar_blocks_match_serial(self, p):
        cfg = dataclasses.replace(CFG_2D, mode="scalar", n_sweeps=6,
                                  n_thermalize=2)
        res = run_spmd(ising_block_program, p, machine=IDEAL, seed=1,
                       args=(cfg,))
        parallel = gather_blocks(cfg, res.values)
        serial = serial_reference(cfg, cfg.n_sweeps + cfg.n_thermalize)
        np.testing.assert_array_equal(parallel, serial.spins)

    def test_scalar_and_vectorized_series_identical(self):
        series = {}
        for mode in ("scalar", "vectorized"):
            cfg = dataclasses.replace(CFG_2D, mode=mode, n_sweeps=6,
                                      n_thermalize=2)
            res = run_spmd(ising_block_program, 2, machine=IDEAL, seed=1,
                           args=(cfg,))
            series[mode] = res.values[0]
            assert res.values[0]["mode"] == mode
        np.testing.assert_array_equal(
            series["scalar"]["magnetization"],
            series["vectorized"]["magnetization"],
        )
        np.testing.assert_array_equal(
            series["scalar"]["bond_sums"], series["vectorized"]["bond_sums"]
        )


class TestMeasurements:
    def test_bond_sums_match_serial_definition(self):
        res = run_spmd(ising_block_program, 2, machine=IDEAL, seed=1, args=(CFG_2D,))
        serial = serial_reference(CFG_2D, CFG_2D.n_sweeps + CFG_2D.n_thermalize)
        np.testing.assert_allclose(
            res.values[0]["bond_sums"][-1], serial.bond_sums(), atol=1e-9
        )

    def test_all_ranks_hold_identical_series(self):
        res = run_spmd(ising_block_program, 4, machine=IDEAL, seed=1, args=(CFG_2D,))
        for v in res.values[1:]:
            np.testing.assert_allclose(
                v["magnetization"], res.values[0]["magnetization"]
            )


class TestValidationAndCosts:
    def test_odd_block_rejected(self):
        cfg = IsingBlockConfig(lx=6, ly=4, lt=4, kx=0.1, ky=0.1, kt=0.1, n_sweeps=1)
        with pytest.raises(ValueError, match="odd x-block"):
            run_spmd(ising_block_program, 4, machine=IDEAL, args=(cfg,))

    def test_inert_axis_coupling_validated(self):
        with pytest.raises(ValueError, match="zero coupling"):
            IsingBlockConfig(lx=4, ly=1, lt=4, kx=0.1, ky=0.2, kt=0.1, n_sweeps=1)

    def test_parallel_run_reports_comm_costs(self):
        res = run_spmd(ising_block_program, 4, machine=PARAGON, seed=1,
                       args=(CFG_2D,))
        assert res.elapsed_model_time > 0
        assert 0 < res.comm_fraction() < 1
        assert res.total_messages > 0
