"""Tests for the batched conflict-free kernels of the 2-D sampler.

Three layers of evidence that ``sweep_vectorized`` samples exactly the
scalar sampler's distribution:

1. **Structural**: within every (color, spatial parity, interval)
   class, all flipped spin cells are distinct and no proposal reads a
   plaquette corner another proposal writes -- verified directly on the
   precomputed gather tables.
2. **Coupled trajectories**: with the Metropolis uniforms forced, one
   array kernel produces bit-identical spins to running the same
   class's moves one bond at a time through the scalar move methods
   (order independence is exactly conflict-freedom).
3. **Statistical**: long scalar and vectorized runs on 4x4 agree with
   each other and with the momentum-blocked exact reference (the latter
   up to the documented zero-winding-sector restriction, measured small
   at beta = 1/2, plus O(dtau^2) Trotter bias).

Plus invariant confinement after long vectorized runs on even- and
odd-Trotter geometries, and a hand-built wound world line checking the
winding estimator itself.
"""

import numpy as np
import pytest

from repro.models.hamiltonians import XXZSquareModel
from repro.models.symmetry_ed import MomentumBlockED
from repro.qmc.worldline2d import WorldlineSquareQmc
from repro.stats.binning import BinningAnalysis

from tests.conftest import assert_within


def make(lx=4, ly=4, beta=0.75, n_slices=16, seed=0, **model_kw):
    model = XXZSquareModel(lx=lx, ly=ly, **model_kw)
    return WorldlineSquareQmc(model, beta, n_slices, seed=seed)


class _ForcedStream:
    """Stream stub returning a constant uniform (0 = always accept
    legal proposals, 1 = always reject)."""

    def __init__(self, value: float):
        self.value = value

    def uniform(self, size=None):
        if size is None:
            return self.value
        return np.full(size, self.value)


def interval_slices(q):
    """The M-axis slices sweep_vectorized runs each class with."""
    if q.n_trotter % 2 == 0:
        return [slice(0, None, 2), slice(1, None, 2)]
    return [slice(m, m + 1) for m in range(q.n_trotter)]


class TestGeometryGate:
    def test_can_vectorize(self):
        assert make(4, 4).can_vectorize
        assert make(8, 4).can_vectorize
        assert not make(2, 4, n_slices=8).can_vectorize
        assert not make(4, 6, n_slices=8).can_vectorize

    def test_vectorized_sweep_rejected_off_grid(self):
        q = make(2, 4, n_slices=8)
        with pytest.raises(ValueError, match="lx % 4"):
            q.sweep_vectorized()

    def test_unknown_mode(self):
        with pytest.raises(ValueError, match="unknown sweep mode"):
            make().sweep(mode="simd")

    def test_auto_dispatch(self):
        # Off-grid geometries fall back to the scalar path silently.
        q = make(2, 4, n_slices=8)
        q.sweep(mode="auto")
        assert q.n_attempted > 0


class TestClassTables:
    def test_classes_cover_every_proposal_once(self):
        q = make()
        total = sum(
            cls["bl"].shape[0] * cls["bl"].shape[1] for cls in q._seg_classes
        )
        assert total == q.n_bonds * q.n_trotter
        bonds = np.concatenate([cls["bonds"] for cls in q._seg_classes])
        assert np.array_equal(np.sort(bonds), np.arange(q.n_bonds))
        sites = np.concatenate([cls["sites"] for cls in q._col_classes])
        assert np.array_equal(np.sort(sites), np.arange(q.n_sites))

    @pytest.mark.parametrize("shape", [(4, 4, 16), (8, 4, 16), (4, 4, 12)])
    def test_segment_classes_are_conflict_free(self, shape):
        """No in-class proposal writes a cell another reads or writes."""
        lx, ly, T = shape
        q = make(lx, ly, n_slices=T)
        n_cells = q.n_sites * q.n_slices
        for cls in q._seg_classes:
            for sl in interval_slices(q):
                wi, wj = cls["wi"][:, sl], cls["wj"][:, sl]
                writes = np.concatenate([wi, wj], axis=2)  # (B, m, 8)
                flat = writes.reshape(-1)
                assert flat.size == np.unique(flat).size, "overlapping flips"
                owner = np.full(n_cells, -1, dtype=np.int64)
                pid = np.arange(writes.shape[0] * writes.shape[1]).reshape(
                    writes.shape[0], writes.shape[1], 1
                )
                owner[writes] = np.broadcast_to(pid, writes.shape)
                for corner in ("bl", "br", "tl", "tr"):
                    read_owner = owner[cls[corner][:, sl]]  # (B, m, 8)
                    ok = (read_owner < 0) | (
                        read_owner == np.broadcast_to(pid, read_owner.shape)
                    )
                    assert np.all(ok), "cross-proposal read/write conflict"

    def test_column_classes_are_conflict_free(self):
        q = make()
        T = q.n_slices
        for cls in q._col_classes:
            writes = (
                cls["sites"][:, None] * T + np.arange(T)[None, :]
            ).reshape(-1)
            assert writes.size == np.unique(writes).size
            owner = np.full(q.n_sites * T, -1, dtype=np.int64)
            owner[writes.reshape(len(cls["sites"]), T)] = np.arange(
                len(cls["sites"])
            )[:, None]
            pid = np.arange(len(cls["sites"]))[:, None]
            for corner in ("bl", "br", "tl", "tr"):
                read_owner = owner[cls[corner]]
                assert np.all((read_owner < 0) | (read_owner == pid))

    def test_shaded_codes_match_per_plaquette_codes(self):
        q = make(seed=3)
        q.run(5, mode="vectorized")
        codes = q.shaded_codes()
        k = 0
        for c in range(4):
            ts = np.arange(c, q.n_slices, 4, dtype=np.intp)
            for bond in np.nonzero(q.bond_colors == c)[0]:
                ref = q._codes(int(bond), ts)
                assert np.array_equal(codes[k : k + ts.size], ref)
                k += ts.size
        assert k == codes.size


@pytest.mark.parametrize("shape", [(4, 4, 16), (8, 4, 16), (4, 4, 12)])
class TestKernelScalarCoupling:
    """Forced-uniform trajectories: kernel == scalar moves, per class."""

    def _pair(self, shape, seed):
        lx, ly, T = shape
        a, b = make(lx, ly, n_slices=T, seed=seed), make(lx, ly, n_slices=T, seed=seed)
        for q in (a, b):
            q.run(3, mode="scalar")  # identical randomized legal start
        assert np.array_equal(a.spins, b.spins)
        return a, b

    def test_segment_kernel_equals_scalar_moves(self, shape):
        a, b = self._pair(shape, seed=41)
        a.stream = _ForcedStream(0.0)
        b.stream = _ForcedStream(0.0)
        for ci, cls in enumerate(a._seg_classes):
            for sl in interval_slices(a):
                a._run_segment_kernel(cls, sl)
                for bond in b._seg_classes[ci]["bonds"]:
                    b.segment_flip_class(int(bond), b._seg_classes[ci]["t0s"][sl])
                assert np.array_equal(a.spins, b.spins), "kernel != scalar"
        assert a.n_attempted == b.n_attempted
        assert a.n_accepted == b.n_accepted
        a.check_invariants()

    def test_column_kernel_equals_scalar_moves(self, shape):
        a, b = self._pair(shape, seed=43)
        a.stream = _ForcedStream(0.0)
        b.stream = _ForcedStream(0.0)
        for ci, cls in enumerate(a._col_classes):
            a._run_column_kernel(cls)
            for site in b._col_classes[ci]["sites"]:
                b.attempt_column_flip(int(site))
            assert np.array_equal(a.spins, b.spins)
        assert a.n_attempted == b.n_attempted
        a.check_invariants()

    def test_uniform_one_is_greedy_ascent(self, shape):
        # u = 1 accepts only strictly uphill proposals, so the sweep
        # can never lower the configuration weight.
        a, _ = self._pair(shape, seed=47)
        logw = a.config_log_weight()
        a.stream = _ForcedStream(1.0)
        for _ in range(3):
            a.sweep_vectorized()
            new_logw = a.config_log_weight()
            assert new_logw >= logw - 1e-9
            logw = new_logw
        a.check_invariants()


class TestWindingEstimator:
    def test_neel_has_zero_winding(self):
        assert make().winding_numbers() == (0, 0)

    def test_hand_built_wound_line(self):
        """A single world line hopping once around the x axis: legal
        configuration, winding (1, 0)."""
        q = make(4, 4, n_slices=32, jz=1.0, jxy=1.0)
        lat = q.lattice
        s = np.zeros_like(q.spins)
        occupancy = {
            lat.site(0, 0): [0, *range(14, 32)],
            lat.site(1, 0): range(1, 6),
            lat.site(2, 0): range(6, 9),
            lat.site(3, 0): range(9, 14),
        }
        for site, ts in occupancy.items():
            for t in ts:
                s[site, t] = 1
        q.spins = s
        assert np.isfinite(q.config_log_weight())
        assert q.winding_numbers() == (1, 0)
        with pytest.raises(AssertionError, match="winding sector"):
            q.check_invariants()

    def test_corrupted_configuration_caught(self):
        q = make(seed=5)
        q.run(10, mode="vectorized")
        q.spins[0, 0] ^= 1
        with pytest.raises(AssertionError):
            q.check_invariants()


@pytest.mark.slow
class TestInvariantConfinement:
    @pytest.mark.parametrize(
        "shape", [(4, 4, 16), (8, 4, 16), (4, 4, 12), (4, 8, 24)]
    )
    def test_long_vectorized_runs_stay_in_sector(self, shape):
        lx, ly, T = shape
        q = make(lx, ly, beta=1.0, n_slices=T, seed=lx + ly + T)
        meas = q.run(400, n_thermalize=0, mode="vectorized")
        q.check_invariants()  # legality + slice magnetization + winding
        assert 0.0 < q.acceptance_rate < 1.0
        assert np.all(np.isfinite(meas.energy))

    def test_long_scalar_run_matches_invariants_too(self):
        q = make(4, 4, beta=1.0, n_slices=12, seed=9)
        q.run(150, mode="scalar")
        q.check_invariants()


@pytest.mark.slow
class TestStatisticalAgreement:
    """Scalar vs vectorized vs momentum-blocked ED on 4x4.

    The local move set is confined to the zero-winding sector while the
    exact trace sums all sectors; at beta = 1/2 that bias was measured
    at ~ +0.15 on E (and negligible on m_stag^2), so the ED comparisons
    carry a documented systematic allowance on top of 3 sigma.  The
    scalar/vectorized cross-check samples identical ensembles and gets
    no allowance.
    """

    BETA, T = 0.5, 16

    @pytest.fixture(scope="class")
    def reference(self):
        return MomentumBlockED(XXZSquareModel(4, 4)).thermal(self.BETA)

    @pytest.fixture(scope="class")
    def runs(self):
        out = {}
        for mode, n_sweeps, seed in (
            ("vectorized", 6000, 101),
            ("scalar", 1500, 103),
        ):
            q = make(4, 4, beta=self.BETA, n_slices=self.T, seed=seed)
            meas = q.run(n_sweeps, n_thermalize=n_sweeps // 10, mode=mode)
            out[mode] = (
                BinningAnalysis.from_series(meas.energy),
                BinningAnalysis.from_series(meas.m_stag_sq),
            )
            q.check_invariants()
        return out

    def test_modes_agree_with_each_other(self, runs):
        for i, label in ((0, "energy"), (1, "m_stag_sq")):
            v, s = runs["vectorized"][i], runs["scalar"][i]
            err = float(np.hypot(v.error, s.error))
            assert_within(v.mean, s.mean, err, n_sigma=3.0,
                          label=f"scalar vs vectorized {label}")

    @pytest.mark.parametrize("mode", ["vectorized", "scalar"])
    def test_modes_agree_with_ed(self, runs, reference, mode):
        be, bm = runs[mode]
        # Winding-sector + Trotter allowance on E: measured ~ +0.15 at
        # this (beta, dtau); 0.3 still trips on any genuine weight bug.
        assert_within(be.mean, reference.energy, be.error, n_sigma=3.0,
                      atol=0.3, label=f"{mode} energy vs ED")
        assert_within(bm.mean, reference.m_stag_sq, bm.error, n_sigma=3.0,
                      atol=0.003, label=f"{mode} m_stag_sq vs ED")
        n = 16
        assert_within(
            n * bm.mean,
            reference.staggered_structure_factor(n),
            n * bm.error,
            n_sigma=3.0,
            atol=n * 0.003,
            label=f"{mode} S(pi,pi) vs ED",
        )
