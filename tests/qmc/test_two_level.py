"""Two-level ensemble x domain parallelism: the composition anchor.

The correctness anchor of :mod:`repro.qmc.two_level`: a composed
``R x P`` run (replica ensembles over strip domain sub-communicators,
both built from ``Communicator.split``) is **bit-identical**, replica
by replica and rank by rank, to ``R`` independent flat ``P``-rank
strip runs with the same per-replica seeds -- on the thread, mp, and
(where available) mpi backends.  On top of the anchor this suite pins:

* ensemble pooling: the leaders' pooled series equals the exact mean
  of the flat replicas' series, and every rank receives it;
* per-level telemetry: ensemble traffic lands in the ``ensemble`` /
  ``ensemble_wait`` clock categories on leaders only, and
  ``SpmdResult.comm_fraction_by_level`` splits the comm fraction into
  halo vs ensemble shares that add up to the flat comm fraction;
* configuration surfaces: ``TwoLevelConfig`` validation, per-replica
  seed/beta derivation, the rank-count contract, and the
  ``ParallelLayout.replicas`` / Simulation facade wiring.
"""

from types import SimpleNamespace

import numpy as np
import pytest

from repro.qmc.parallel import WorldlineStripConfig, worldline_strip_program
from repro.qmc.two_level import TwoLevelConfig, two_level_program
from repro.vmp.mpi_backend import mpi_available, mpiexec_available
from tests.conftest import (
    STRIP_KEYS,
    assert_bit_identical,
    run_driver_matrix,
)

HAVE_REAL_MPI = mpi_available() and mpiexec_available()
BACKENDS = [
    "thread",
    pytest.param("mp", marks=pytest.mark.tier1_fault),
] + ([pytest.param("mpi", marks=pytest.mark.tier1_fault)] if HAVE_REAL_MPI else [])


def _base(n_sweeps=6):
    return WorldlineStripConfig(
        n_sites=16, jz=1.0, jxy=0.8, beta=0.9, n_slices=8,
        n_sweeps=n_sweeps, n_thermalize=2,
    )


def _tl_cfg(replicas=2, domain_ranks=2, **kw):
    return TwoLevelConfig(
        replicas=replicas, domain_ranks=domain_ranks, base=_base(), **kw
    )


def _replica_slice(composed, cfg, replica):
    """The composed result restricted to one replica's domain ranks."""
    P = cfg.domain_ranks
    return SimpleNamespace(
        values=composed.values[replica * P : (replica + 1) * P]
    )


# ======================================================================
# the anchor: composed == independent flat runs, bit for bit
# ======================================================================


@pytest.mark.parametrize("backend", BACKENDS)
class TestComposedBitIdentity:
    def test_composed_matches_flat_strip_runs(self, backend):
        cfg = _tl_cfg()
        composed = run_driver_matrix(
            two_level_program, cfg.n_ranks, cfg, seed=42, backend=backend
        )
        for r in range(cfg.replicas):
            flat = run_driver_matrix(
                worldline_strip_program, cfg.domain_ranks, cfg.config_for(r),
                seed=42,
            )
            assert_bit_identical(
                flat, _replica_slice(composed, cfg, r), STRIP_KEYS
            )

    def test_pooled_series_is_exact_ensemble_mean(self, backend):
        cfg = _tl_cfg()
        composed = run_driver_matrix(
            two_level_program, cfg.n_ranks, cfg, seed=42, backend=backend
        )
        flats = [
            run_driver_matrix(
                worldline_strip_program, cfg.domain_ranks, cfg.config_for(r),
                seed=42,
            ).values[0]
            for r in range(cfg.replicas)
        ]
        want_e = (flats[0]["energy"] + flats[1]["energy"]) / 2
        want_m = (flats[0]["magnetization"] + flats[1]["magnetization"]) / 2
        for rank, v in enumerate(composed.values):
            assert not v["ensemble_degraded"]
            is_leader = rank % cfg.domain_ranks == 0
            assert v["n_ensemble_syncs"] == (len(want_e) if is_leader else 0)
            np.testing.assert_array_equal(v["ensemble_energy"], want_e)
            np.testing.assert_array_equal(v["ensemble_magnetization"], want_m)


@pytest.mark.tier1_fault
def test_thread_and_mp_agree_on_composed_accounting():
    cfg = _tl_cfg()
    ref = run_driver_matrix(
        two_level_program, cfg.n_ranks, cfg, seed=42, backend="thread"
    )
    got = run_driver_matrix(
        two_level_program, cfg.n_ranks, cfg, seed=42, backend="mp"
    )
    assert_bit_identical(ref, got, STRIP_KEYS, accounting=True)


# ======================================================================
# per-level telemetry
# ======================================================================


class TestPerLevelTelemetry:
    def test_ensemble_charges_on_leaders_only(self):
        cfg = _tl_cfg()
        composed = run_driver_matrix(
            two_level_program, cfg.n_ranks, cfg, seed=42
        )
        for rank, outcome in enumerate(composed.outcomes):
            ens = outcome.breakdown.get("ensemble", 0.0)
            ens_wait = outcome.breakdown.get("ensemble_wait", 0.0)
            if rank % cfg.domain_ranks == 0:
                assert ens + ens_wait > 0.0, f"leader rank {rank}"
            else:
                assert ens == 0.0 and ens_wait == 0.0, f"member rank {rank}"

    def test_comm_fraction_by_level_partitions_comm_fraction(self):
        cfg = _tl_cfg()
        composed = run_driver_matrix(
            two_level_program, cfg.n_ranks, cfg, seed=42
        )
        by_level = composed.comm_fraction_by_level()
        assert set(by_level) == {"comm", "ensemble"}
        assert by_level["comm"] > 0.0
        assert by_level["ensemble"] > 0.0
        assert sum(by_level.values()) == pytest.approx(
            composed.comm_fraction(), abs=1e-12
        )

    def test_ensemble_every_zero_disables_heartbeat(self):
        cfg = _tl_cfg(ensemble_every=0)
        composed = run_driver_matrix(
            two_level_program, cfg.n_ranks, cfg, seed=42
        )
        for v in composed.values:
            assert v["n_ensemble_syncs"] == 0
            # The end-of-run pooling still happens.
            assert v["ensemble_energy"] is not None


# ======================================================================
# configuration surfaces
# ======================================================================


class TestTwoLevelConfig:
    def test_seed_ladder_defaults_to_offsets(self):
        cfg = _tl_cfg(replicas=3, domain_ranks=1)
        base_seed = cfg.base.sweep_seed
        assert [cfg.seed_for(r) for r in range(3)] == [
            base_seed, base_seed + 1, base_seed + 2
        ]

    def test_explicit_seeds_and_betas(self):
        cfg = _tl_cfg(replicas=2, sweep_seeds=(7, 9), betas=(0.8, 1.2))
        assert cfg.seed_for(1) == 9
        rep = cfg.config_for(1)
        assert rep.sweep_seed == 9
        assert rep.beta == 1.2
        # Everything else is the shared base configuration.
        assert rep.n_sites == cfg.base.n_sites

    def test_n_ranks_is_product(self):
        assert _tl_cfg(replicas=4, domain_ranks=3).n_ranks == 12

    @pytest.mark.parametrize("kwargs,match", [
        (dict(replicas=0), "at least one replica"),
        (dict(domain_ranks=0), "at least one domain rank"),
        (dict(sweep_seeds=(1,)), "sweep_seeds has 1 entries for 2 replicas"),
        (dict(betas=(0.9,)), "betas has 1 entries for 2 replicas"),
        (dict(ensemble_every=-1), "ensemble_every must be >= 0"),
    ])
    def test_validation(self, kwargs, match):
        full = dict(replicas=2, domain_ranks=2, base=_base())
        full.update(kwargs)
        with pytest.raises(ValueError, match=match):
            TwoLevelConfig(**full)

    def test_wrong_world_size_rejected(self):
        cfg = _tl_cfg()
        with pytest.raises(ValueError, match="needs 4 ranks, got 3"):
            run_driver_matrix(two_level_program, 3, cfg, seed=1)


class TestLayoutWiring:
    def test_layout_validates_replicas(self):
        from repro.run.config import ParallelLayout

        assert ParallelLayout("strip", 2, replicas=4).replicas == 4
        with pytest.raises(ValueError, match="replicas must be >= 1"):
            ParallelLayout("strip", 2, replicas=0)
        with pytest.raises(ValueError, match="'strip' strategy only"):
            ParallelLayout("serial", 1, replicas=2)

    def test_simulation_facade_runs_composed_layout(self):
        from repro.run.config import ParallelLayout, XXZRunConfig
        from repro.run.simulation import Simulation

        layout = ParallelLayout("strip", 2, "Paragon", replicas=2)
        cfg = XXZRunConfig(
            n_sites=16, beta=0.9, jz=1.0, jxy=0.8, n_slices=8,
            n_sweeps=6, n_thermalize=2, layout=layout,
        )
        result = Simulation(cfg).run()
        assert result.runtime["replicas"] == 2
        assert result.runtime["domain_ranks"] == 2
        assert result.runtime["ensemble_degraded"] is False
        by_level = result.runtime["comm_fraction_by_level"]
        assert by_level["ensemble"] > 0.0
        assert by_level["comm"] > 0.0
