"""Tests for Wang-Landau + multicanonical sampling.

Oracle: the exactly enumerable 4x4 periodic Ising model (2^16
configurations) -- exact density of states and exact canonical
averages.
"""

import numpy as np
import pytest

from repro.qmc.multicanonical import (
    MulticanonicalSampler,
    WangLandauSampler,
)
from repro.util.logspace import logsumexp

L = 4
N = L * L
E_MIN, E_MAX, N_BINS = -2.0 * N - 2.0, 2.0 * N + 2.0, 17


@pytest.fixture(scope="module")
def exact_dos():
    """Exact (energies, log_g) of the 4x4 periodic Ising model (J=1)."""
    counts: dict[float, int] = {}
    for bits in range(2**N):
        s = (
            np.array([(bits >> k) & 1 for k in range(N)], dtype=np.int8).reshape(L, L)
            * 2
            - 1
        )
        e = -float(
            np.sum(s * np.roll(s, -1, axis=0)) + np.sum(s * np.roll(s, -1, axis=1))
        )
        counts[e] = counts.get(e, 0) + 1
    energies = np.array(sorted(counts))
    log_g = np.log(np.array([counts[e] for e in energies], dtype=float))
    return energies, log_g


@pytest.fixture(scope="module")
def wl_result():
    wl = WangLandauSampler(
        (L, L), (1.0, 1.0), E_MIN, E_MAX, N_BINS, seed=3, log_f_final=5e-5
    )
    return wl.run(sweeps_per_check=30)


class TestWangLandau:
    def test_visits_full_spectrum(self, wl_result):
        centers = wl_result.bin_centers[wl_result.visited]
        assert centers.min() == pytest.approx(-2.0 * N, abs=2.0)
        assert centers.max() == pytest.approx(2.0 * N, abs=2.0)

    def test_gap_bins_never_visited(self, wl_result):
        # E = +-(2N - 4) does not exist on the periodic square lattice.
        centers = wl_result.bin_centers
        for e_gap in (-(2.0 * N - 4.0), 2.0 * N - 4.0):
            k = int(np.argmin(np.abs(centers - e_gap)))
            assert not wl_result.visited[k]

    def test_recovers_exact_dos_shape(self, wl_result, exact_dos):
        energies, log_g_exact = exact_dos
        log_g = wl_result.log_g_normalized(N * np.log(2.0))
        for e, lg in zip(energies, log_g_exact):
            k = int(np.argmin(np.abs(wl_result.bin_centers - e)))
            assert wl_result.visited[k]
            assert log_g[k] == pytest.approx(lg, abs=0.5), f"E={e}"

    def test_normalization(self, wl_result):
        log_g = wl_result.log_g_normalized(N * np.log(2.0))
        assert logsumexp(log_g[np.isfinite(log_g)]) == pytest.approx(
            N * np.log(2.0), abs=1e-9
        )

    def test_annealing_terminated(self, wl_result):
        assert wl_result.final_log_f <= 5e-5
        assert wl_result.iterations >= 10


class TestMulticanonical:
    @pytest.fixture(scope="class")
    def muca(self, wl_result):
        m = MulticanonicalSampler((L, L), (1.0, 1.0), wl_result, seed=7)
        m.run(n_sweeps=4000, n_thermalize=200)
        return m

    def test_histogram_roughly_flat(self, muca):
        h = muca.histogram()
        occupied = h.counts[h.counts > 0]
        # Random walk in energy: occupied bins within ~6x of each other
        # (far flatter than any canonical histogram over 25 decades of g).
        assert occupied.min() > occupied.max() / 20

    def test_visits_both_phase_regions(self, muca):
        e = np.asarray(muca.energies)
        assert e.min() <= -2.0 * N + 4.0  # reached the ground states
        assert e.max() >= 0.0  # and the disordered region

    def test_reweighted_energy_matches_exact(self, muca, exact_dos):
        energies, log_g_exact = exact_dos
        for beta in (0.2, 0.4, 0.6):
            lw = log_g_exact - beta * energies
            lw -= lw.max()
            w = np.exp(lw)
            exact = float(np.sum(w * energies) / np.sum(w))
            est = muca.reweighted_energy(beta)
            assert est == pytest.approx(exact, abs=0.06 * abs(exact) + 0.4), (
                f"beta={beta}"
            )

    def test_requires_run_before_reweight(self, wl_result):
        m = MulticanonicalSampler((L, L), (1.0, 1.0), wl_result, seed=9)
        with pytest.raises(ValueError):
            m.reweighted_energy(0.4)
