"""Tests for the Simulation facade (small, fast runs)."""

import numpy as np
import pytest

from repro.run.config import ParallelLayout, TfimRunConfig, XXZRunConfig
from repro.run.simulation import Simulation


class TestDispatch:
    def test_unknown_config_rejected(self):
        with pytest.raises(TypeError):
            Simulation(object())

    def test_kind_detection(self):
        assert Simulation(XXZRunConfig(n_sites=8, beta=1.0, n_sweeps=2)).kind == "xxz"
        assert (
            Simulation(TfimRunConfig(spatial_shape=(4,), beta=1.0, n_sweeps=2)).kind
            == "tfim"
        )


class TestXXZRuns:
    def test_serial_run_produces_estimates(self):
        cfg = XXZRunConfig(
            n_sites=8, beta=0.5, n_slices=8, n_sweeps=200, n_thermalize=20
        )
        result = Simulation(cfg).run()
        assert result.kind == "xxz"
        assert np.isfinite(result.estimate("energy").value)
        assert result.estimate("energy_per_site").value == pytest.approx(
            result.estimate("energy").value / 8
        )
        assert result.estimate("susceptibility").value > 0
        assert len(result.series["energy"]) == 200

    def test_replica_concatenates_chains(self):
        cfg = XXZRunConfig(
            n_sites=8, beta=0.5, n_slices=8, n_sweeps=50, n_thermalize=10,
            layout=ParallelLayout("replica", 3),
        )
        result = Simulation(cfg).run()
        assert len(result.series["energy"]) == 150

    def test_strip_run_reports_machine_time(self):
        cfg = XXZRunConfig(
            n_sites=8, beta=0.5, n_slices=8, n_sweeps=60, n_thermalize=10,
            layout=ParallelLayout("strip", 2, "Paragon"),
        )
        result = Simulation(cfg).run()
        assert result.model_time > 0
        assert 0 < result.comm_fraction < 1
        assert result.parameters["machine"] == "Paragon"


class TestTfimRuns:
    def test_serial_run(self):
        cfg = TfimRunConfig(
            spatial_shape=(8,), beta=1.0, gamma=1.0, n_slices=8,
            n_sweeps=200, n_thermalize=20,
        )
        result = Simulation(cfg).run()
        assert np.isfinite(result.estimate("energy").value)
        assert 0 < result.estimate("sigma_x").value < 1.2
        assert 0 <= result.estimate("abs_magnetization").value <= 1

    def test_block_parallel_chain_matches_serial_estimators(self):
        # Same seed feeds the shared-uniform stream: the block run's
        # estimator series must be statistically indistinguishable (here:
        # same model, same sweep counts; not bit-identical because the
        # serial TfimQmc path uses a 2-D classical lattice while the
        # block driver uses the inert-axis 3-D embedding).
        common = dict(
            spatial_shape=(8,), beta=1.0, gamma=1.0, n_slices=8,
            n_sweeps=400, n_thermalize=50, seed=5,
        )
        serial = Simulation(TfimRunConfig(**common)).run()
        block = Simulation(
            TfimRunConfig(**common, layout=ParallelLayout("block", 2, "CM-5"))
        ).run()
        es, eb = serial.estimate("energy"), block.estimate("energy")
        err = float(np.hypot(es.error, eb.error))
        assert abs(es.value - eb.value) < 5 * err + 0.02 * abs(es.value)
        assert block.model_time > 0

    def test_block_parallel_2d(self):
        cfg = TfimRunConfig(
            spatial_shape=(4, 4), beta=1.0, gamma=2.0, n_slices=8,
            n_sweeps=100, n_thermalize=20,
            layout=ParallelLayout("block", 4, "Paragon"),
        )
        result = Simulation(cfg).run()
        assert np.isfinite(result.estimate("energy").value)
        assert result.comm_fraction > 0


class TestXXZ2DRuns:
    def test_serial_run(self):
        from repro.run.config import XXZ2DRunConfig

        cfg = XXZ2DRunConfig(lx=2, ly=4, beta=0.5, n_slices=8,
                             n_sweeps=60, n_thermalize=10)
        result = Simulation(cfg).run()
        assert result.kind == "xxz2d"
        assert np.isfinite(result.estimate("energy").value)
        assert result.estimate("staggered_structure_factor").value > 0
        assert result.estimate("susceptibility").value >= 0

    def test_replica_run_concatenates(self):
        from repro.run.config import XXZ2DRunConfig

        cfg = XXZ2DRunConfig(
            lx=2, ly=4, beta=0.5, n_slices=8, n_sweeps=30, n_thermalize=5,
            layout=ParallelLayout("replica", 2),
        )
        result = Simulation(cfg).run()
        assert len(result.series["energy"]) == 60

    def test_block_layout_rejected(self):
        from repro.run.config import XXZ2DRunConfig

        with pytest.raises(ValueError, match="serial and replica"):
            XXZ2DRunConfig(lx=4, ly=4, beta=1.0,
                           layout=ParallelLayout("block", 4))
