"""End-to-end smoke test of the telemetry outputs (tier 1).

Runs the strip driver at P=2 through the CLI with ``--metrics-out`` /
``--trace-out`` into a tmpdir and asserts every artifact -- metrics
JSONL, Chrome trace, manifest -- is well-formed, plus that a plain run
reports acceptance and throughput without any telemetry flag.
"""

import json

import pytest

from repro.cli import main
from repro.obs.manifest import build_manifest, config_hash
from repro.obs.sinks import read_metrics_jsonl
from repro.run.config import ParallelLayout, XXZ2DRunConfig, XXZRunConfig
from repro.run.simulation import Simulation

XXZ_ARGS = [
    "run-xxz", "--sites", "16", "--beta", "1.0", "--slices", "16",
    "--sweeps", "6", "--thermalize", "2", "--strategy", "strip",
    "--ranks", "2", "--machine", "Paragon",
]


class TestCliTelemetry:
    @pytest.fixture(scope="class")
    def run_dir(self, tmp_path_factory):
        out = tmp_path_factory.mktemp("obs")
        code = main(XXZ_ARGS + [
            "--metrics-out", str(out / "metrics.jsonl"),
            "--trace-out", str(out / "trace.json"),
            "--obs-interval", "2",
        ])
        assert code == 0
        return out

    def test_metrics_jsonl_well_formed(self, run_dir):
        rows = read_metrics_jsonl(run_dir / "metrics.jsonl")
        assert rows
        # Interval snapshots for both ranks plus one summary row each.
        periodic = [r for r in rows if "sweep" in r]
        assert {r["rank"] for r in periodic} == {0, 1}
        summaries = [r for r in rows if r.get("kind") == "summary"]
        assert len(summaries) == 2
        for row in summaries:
            assert row["comm.messages_sent"] > 0
            assert row["sweep.count"] == 8  # 6 sweeps + 2 thermalize
            assert row["sweep.attempted"] > 0

    def test_trace_json_well_formed(self, run_dir):
        doc = json.loads((run_dir / "trace.json").read_text())
        assert doc["displayTimeUnit"] == "ms"
        by_rank = {}
        for e in doc["traceEvents"]:
            if e["ph"] == "X":
                by_rank.setdefault(e["tid"], set()).add(e["name"])
        for rank in (0, 1):
            assert {"compute", "comm", "idle"} <= by_rank[rank]

    def test_manifest_well_formed(self, run_dir):
        doc = json.loads((run_dir / "manifest.json").read_text())
        assert doc["manifest_version"] == 1
        assert doc["kind"] == "xxz"
        assert doc["parameters"]["n_ranks"] == 2
        assert doc["config_hash"] == config_hash(doc["parameters"])
        assert doc["seed"] == 0
        assert "python" in doc["environment"]
        assert doc["run_report"]["n_ranks"] == 2
        assert set(doc["rank_metrics"]) == {"0", "1"}
        assert doc["rank_metrics"]["0"]["phase.model_seconds"] > 0
        assert doc["outputs"]["metrics_out"].endswith("metrics.jsonl")

    def test_summary_names_output_files(self, run_dir, capsys):
        # Re-run so this test owns its captured stdout.
        out = run_dir / "again"
        assert main(XXZ_ARGS + ["--metrics-out", str(out / "m.jsonl")]) == 0
        text = capsys.readouterr().out
        assert "metrics_out ->" in text
        assert "manifest ->" in text


class TestPlainRunReporting:
    def test_plain_run_reports_acceptance_and_throughput(self, capsys):
        assert main(XXZ_ARGS) == 0
        text = capsys.readouterr().out
        assert "acceptance = " in text
        assert "sweeps/s" in text
        assert "halo traffic = " in text
        assert "MB" in text
        assert "2/2 completed" in text

    def test_serial_run_reports_acceptance(self, capsys):
        assert main([
            "run-xxz2d", "--lx", "4", "--ly", "4", "--beta", "0.5",
            "--slices", "8", "--sweeps", "5", "--thermalize", "1",
        ]) == 0
        text = capsys.readouterr().out
        assert "acceptance = " in text
        assert "sweeps/s" in text


class TestConfigValidation:
    def test_obs_interval_needs_metrics_out(self):
        with pytest.raises(ValueError, match="metrics_out"):
            XXZRunConfig(n_sites=8, beta=1.0, obs_interval=5)

    def test_trace_needs_spmd_layout(self):
        with pytest.raises(ValueError, match="SPMD layout"):
            XXZRunConfig(n_sites=8, beta=1.0, trace_out="t.json")
        with pytest.raises(ValueError, match="SPMD layout"):
            XXZ2DRunConfig(lx=4, ly=4, beta=1.0, n_slices=8,
                           trace_out="t.json",
                           layout=ParallelLayout("replica", 2))

    def test_telemetry_off_by_default(self):
        cfg = XXZRunConfig(n_sites=8, beta=1.0)
        assert cfg.metrics_out is None
        assert cfg.trace_out is None
        assert cfg.obs_interval == 0


class TestManifest:
    def test_config_hash_is_canonical(self):
        a = config_hash({"x": 1, "y": 2.0})
        b = config_hash({"y": 2.0, "x": 1})
        assert a == b
        assert a != config_hash({"x": 1, "y": 2.5})

    def test_build_manifest_minimal(self):
        doc = build_manifest("xxz", {"n_sites": 8})
        assert doc["kind"] == "xxz"
        assert doc["rank_metrics"] is None
        assert doc["run_report"] is None
        assert doc["git_revision"]
        assert "written_at" in doc

    def test_instrumented_run_matches_plain(self, tmp_path):
        """Telemetry must not perturb the Markov chain."""
        import numpy as np

        layout = ParallelLayout("strip", 2, "Paragon")
        plain = Simulation(XXZRunConfig(
            n_sites=16, beta=1.0, n_slices=16, n_sweeps=5, n_thermalize=1,
            layout=layout,
        )).run()
        instrumented = Simulation(XXZRunConfig(
            n_sites=16, beta=1.0, n_slices=16, n_sweeps=5, n_thermalize=1,
            layout=layout,
            metrics_out=str(tmp_path / "m.jsonl"),
            trace_out=str(tmp_path / "t.json"),
            obs_interval=2,
        )).run()
        assert np.array_equal(plain.series["energy"],
                              instrumented.series["energy"])
