"""Tests for result records and their JSON/NPZ round-trip."""

import numpy as np
import pytest

from repro.run.results import ObservableEstimate, RunResult, load_result, save_result


class TestObservableEstimate:
    def test_agrees_with(self):
        est = ObservableEstimate("energy", -2.0, 0.1)
        assert est.agrees_with(-2.25)  # 2.5 sigma
        assert not est.agrees_with(-2.5)  # 5 sigma
        assert est.agrees_with(-2.5, atol=0.3)

    def test_str(self):
        s = str(ObservableEstimate("chi", 0.123456, 0.01))
        assert "chi" in s and "+-" in s


class TestRunResult:
    def test_estimate_lookup(self):
        r = RunResult(kind="xxz", parameters={})
        r.estimates["energy"] = ObservableEstimate("energy", 1.0, 0.1)
        assert r.estimate("energy").value == 1.0
        with pytest.raises(KeyError, match="no estimate"):
            r.estimate("missing")

    def test_summary_mentions_everything(self):
        r = RunResult(kind="tfim", parameters={}, model_time=1.5, comm_fraction=0.25)
        r.estimates["energy"] = ObservableEstimate("energy", -3.0, 0.2)
        s = r.summary()
        assert "tfim" in s and "energy" in s and "model_time" in s and "25" in s


class TestRoundTrip:
    def test_save_load(self, tmp_path):
        r = RunResult(
            kind="xxz",
            parameters={"n_sites": 8, "beta": 1.0},
            model_time=2.5,
            comm_fraction=0.1,
        )
        r.estimates["energy"] = ObservableEstimate("energy", -3.1, 0.05, tau_int=2.0)
        r.add_series("energy", np.arange(10.0))

        save_result(r, tmp_path / "run1")
        loaded = load_result(tmp_path / "run1")

        assert loaded.kind == "xxz"
        assert loaded.parameters == {"n_sites": 8, "beta": 1.0}
        assert loaded.model_time == 2.5
        est = loaded.estimate("energy")
        assert est.value == -3.1 and est.tau_int == 2.0
        np.testing.assert_array_equal(loaded.series["energy"], np.arange(10.0))

    def test_save_without_series(self, tmp_path):
        r = RunResult(kind="tfim", parameters={})
        save_result(r, tmp_path / "bare")
        loaded = load_result(tmp_path / "bare")
        assert loaded.series == {}

    def test_json_is_readable(self, tmp_path):
        import json

        r = RunResult(kind="xxz", parameters={"beta": 2.0})
        r.estimates["e"] = ObservableEstimate("e", 1.0, 0.1)
        save_result(r, tmp_path / "doc")
        doc = json.loads((tmp_path / "doc.json").read_text())
        assert doc["kind"] == "xxz"
        assert doc["estimates"]["e"]["value"] == 1.0
