"""Campaign scheduler: specs, cache keys, resume, retry, pool width.

Pure tests cover spec parsing/validation (including the built-in TOML
subset parser against stdlib ``tomllib``), grid expansion, and cache-key
purity.  The ``tier1_fault``-marked tests drive the real scheduler with
backend OS processes: fresh-then-resume cache hits, stale-checkpoint
rejection after a spec edit, retry-then-succeed after a genuinely
fault-injected :class:`~repro.vmp.faults.RankFailure`, and bit-identity
of the result set across worker-pool widths (the acceptance criterion:
an interrupted+resumed campaign equals an uninterrupted ``--jobs 1``
one, which reduces to scheduling order never entering the physics).
"""

import asyncio
import json
import subprocess
import sys
import textwrap
from pathlib import Path

import numpy as np
import pytest

from repro.run.campaign import (
    CAMPAIGN_VERSION,
    CampaignSpec,
    RunAttempt,
    _is_transient,
    _parse_minimal_toml,
    build_run_argv,
    expand_grid,
    load_campaign_spec,
    parse_spec_dict,
    run_cache_key,
    run_campaign,
    subprocess_executor,
)
from repro.vmp.faults import (
    CrashFault,
    FaultPlan,
    InjectedRankCrash,
    RankFailure,
)
from repro.vmp.machines import IDEAL
from repro.vmp.scheduler import run_spmd

fault = pytest.mark.tier1_fault

SPEC_TOML = textwrap.dedent("""\
    # An ordinary small sweep spec.
    [campaign]
    kind = "xxz"
    name = "demo"
    jobs = 3
    timeout = 120.0
    retries = 1
    backoff = 0.25
    policy = "fail-fast"

    [base]
    n_sites = 8
    n_slices = 4
    n_sweeps = 10
    n_thermalize = 2
    jz = 1.0

    [sweep]
    beta = [0.5, 1.0]
    seed = [0, 1]
""")


def _spec(**overrides):
    kw = dict(
        kind="xxz",
        name="t",
        base={"n_sites": 6, "n_slices": 4, "n_sweeps": 10, "n_thermalize": 2},
        sweep={"beta": [0.5, 1.0]},
        jobs=2,
        timeout=120.0,
        retries=1,
        backoff=0.01,
    )
    kw.update(overrides)
    return CampaignSpec(**kw)


# ======================================================================
# spec parsing + validation
# ======================================================================


class TestSpecParsing:
    def test_toml_spec_loads(self, tmp_path):
        path = tmp_path / "demo.toml"
        path.write_text(SPEC_TOML)
        spec = load_campaign_spec(path)
        assert spec.kind == "xxz" and spec.name == "demo"
        assert spec.jobs == 3 and spec.retries == 1
        assert spec.policy == "fail-fast"
        assert spec.base["n_sites"] == 8 and spec.base["jz"] == 1.0
        assert spec.sweep == {"beta": [0.5, 1.0], "seed": [0, 1]}
        assert spec.n_runs == 4

    def test_minimal_parser_matches_tomllib(self):
        tomllib = pytest.importorskip("tomllib")
        assert _parse_minimal_toml(SPEC_TOML) == tomllib.loads(SPEC_TOML)

    def test_minimal_parser_rejects_nested_tables(self):
        with pytest.raises(ValueError, match="single-level"):
            _parse_minimal_toml("[[campaign]]\nkind = 'xxz'\n")

    def test_json_spec_loads(self, tmp_path):
        path = tmp_path / "demo.json"
        path.write_text(json.dumps({
            "campaign": {"kind": "tfim"},
            "base": {"shape": "4x4", "n_slices": 4},
            "sweep": {"beta": [0.5, 1.0]},
        }))
        spec = load_campaign_spec(path)
        assert spec.kind == "tfim" and spec.name == "demo"
        assert spec.n_runs == 2

    def test_missing_spec_file(self, tmp_path):
        with pytest.raises(ValueError, match="does not exist"):
            load_campaign_spec(tmp_path / "nope.toml")

    @pytest.mark.parametrize("doc, match", [
        ({}, r"no \[campaign\] table"),
        ({"campaign": {}}, "needs a 'kind'"),
        ({"campaign": {"kind": "bogus"}}, "unknown campaign kind"),
        ({"campaign": {"kind": "xxz", "cores": 4}}, "unknown"),
        ({"campaign": {"kind": "xxz"}, "extra": {}}, "unknown spec table"),
    ])
    def test_bad_documents_rejected(self, doc, match):
        with pytest.raises(ValueError, match=match):
            parse_spec_dict(doc)

    def test_unknown_field_rejected(self):
        with pytest.raises(ValueError, match="not a xxz run parameter"):
            _spec(base={"n_sites": 6, "voltage": 3.0})

    def test_base_sweep_overlap_rejected(self):
        with pytest.raises(ValueError, match="both"):
            _spec(base={"n_sites": 6, "beta": 1.0}, sweep={"beta": [0.5]})

    def test_empty_sweep_axis_rejected(self):
        with pytest.raises(ValueError, match="empty"):
            _spec(sweep={"beta": []})

    def test_missing_required_field_rejected(self):
        with pytest.raises(ValueError, match="n_sites"):
            _spec(base={"n_slices": 4}, sweep={"beta": [0.5]})

    def test_bad_policy_rejected(self):
        with pytest.raises(ValueError, match="policy"):
            _spec(policy="shrug")


# ======================================================================
# grid expansion + cache keys
# ======================================================================


class TestGridAndCacheKeys:
    def test_declaration_order_and_run_ids(self):
        spec = _spec(sweep={"beta": [0.5, 1.0], "seed": [0, 1]})
        runs = expand_grid(spec)
        assert [r.run_id for r in runs] == [
            "r0000-beta0.5-seed0", "r0001-beta0.5-seed1",
            "r0002-beta1.0-seed0", "r0003-beta1.0-seed1",
        ]
        assert runs[2].swept == {"beta": 1.0, "seed": 0}
        assert runs[2].params["n_sites"] == 6

    def test_cache_key_is_pure_and_distinct(self):
        spec = _spec()
        first = [r.cache_key for r in expand_grid(spec)]
        again = [r.cache_key for r in expand_grid(spec)]
        assert first == again
        assert len(set(first)) == len(first)
        # Scheduling knobs never enter the key...
        tweaked = _spec(jobs=7, timeout=1.0, retries=0)
        assert [r.cache_key for r in expand_grid(tweaked)] == first
        # ...but any physics parameter does.
        edited = _spec(base={**spec.base, "n_sweeps": 11})
        assert all(
            a != b
            for a, b in zip(first, (r.cache_key for r in expand_grid(edited)))
        )

    @fault
    def test_cache_key_stable_across_process_restart(self, tmp_path):
        """The resume contract: a fresh interpreter recomputes the keys."""
        spec = _spec(sweep={"beta": [0.5, 1.0], "seed": [0, 1]})
        mine = {r.run_id: r.cache_key for r in expand_grid(spec)}
        script = textwrap.dedent("""\
            import json, sys
            from repro.run.campaign import CampaignSpec, expand_grid
            spec = CampaignSpec(**json.loads(sys.argv[1]))
            print(json.dumps(
                {r.run_id: r.cache_key for r in expand_grid(spec)}))
        """)
        spec_json = json.dumps({
            "kind": spec.kind, "name": spec.name,
            "base": dict(spec.base),
            "sweep": {k: list(v) for k, v in spec.sweep.items()},
        })
        out = subprocess.run(
            [sys.executable, "-c", script, spec_json],
            capture_output=True, text=True, check=True,
            env={"PYTHONPATH": str(Path(__file__).resolve().parents[2] / "src")},
        )
        assert json.loads(out.stdout) == mine

    def test_run_cache_key_matches_manifest_hashing(self):
        from repro.obs.manifest import config_hash

        params = {"n_sites": 6, "beta": 0.5}
        assert run_cache_key("xxz", params) == config_hash(
            {"kind": "xxz", "params": params}
        )

    def test_build_run_argv_flag_mapping(self, tmp_path):
        spec = _spec(base={
            "n_sites": 8, "n_slices": 4, "n_sweeps": 10, "n_thermalize": 2,
            "strategy": "strip", "ranks": 2, "overlap": True,
            "periodic": False, "checkpoint_every": 5,
        })
        (run,) = expand_grid(_spec(base=spec.base, sweep={"beta": [0.5]}))
        argv = build_run_argv(run, tmp_path, resume=True)
        assert argv[:4] == [sys.executable, "-m", "repro", "run-xxz"]
        text = " ".join(argv)
        assert "--sites 8" in text and "--beta 0.5" in text
        assert "--strategy strip --ranks 2" in text
        assert "--overlap" in text and "--open-chain" in text
        assert "--checkpoint-every 5" in text and "--resume" in text
        assert f"--output {tmp_path / 'result'}" in text
        assert "--quiet" in text

    def test_transient_classification(self):
        # Config errors are permanent; crashes and timeouts retry.
        assert not _is_transient(RunAttempt(returncode=2, wall_seconds=0.1))
        assert _is_transient(RunAttempt(returncode=1, wall_seconds=0.1))
        assert _is_transient(RunAttempt(returncode=-9, wall_seconds=0.1))
        assert _is_transient(
            RunAttempt(returncode=2, wall_seconds=0.1, transient=True)
        )


# ======================================================================
# the scheduler, end to end (backend OS processes)
# ======================================================================


@fault
class TestSchedulerEndToEnd:
    def test_fresh_campaign_then_resume_is_all_cache_hits(self, tmp_path):
        spec = _spec()
        out = tmp_path / "c"
        fresh = run_campaign(spec, out_dir=out)
        assert fresh.ok
        assert fresh.counters["completed"] == 2
        assert fresh.counters["cached"] == 0
        for o in fresh.outcomes:
            run_dir = out / "runs" / o.run.run_id
            assert (run_dir / "result.json").is_file()
            assert (run_dir / "manifest.json").is_file()
            assert (run_dir / "campaign_run.json").is_file()
        manifest = json.loads((out / "campaign.json").read_text())
        assert manifest["campaign_version"] == CAMPAIGN_VERSION
        assert manifest["counters"]["completed"] == 2

        resumed = run_campaign(spec, out_dir=out, resume=True)
        assert resumed.ok
        assert resumed.counters["cached"] == 2
        assert resumed.counters["completed"] == 0
        # The campaign counters flow through the metrics registry.
        manifest = json.loads((out / "campaign.json").read_text())
        assert manifest["metrics"]["0"]["campaign.runs_cached"] == 2

    def test_without_resume_everything_recomputes(self, tmp_path):
        spec = _spec(sweep={"beta": [0.5]})
        out = tmp_path / "c"
        assert run_campaign(spec, out_dir=out).counters["completed"] == 1
        again = run_campaign(spec, out_dir=out)  # resume=False
        assert again.counters == {
            "completed": 1, "cached": 0, "failed": 0, "skipped": 0,
            "retried": 0,
        }

    def test_spec_edit_invalidates_cache_and_checkpoints(self, tmp_path):
        """Stale rejection: resume after a spec edit must recompute."""
        base = {
            "n_sites": 8, "n_slices": 4, "n_sweeps": 10, "n_thermalize": 2,
            "strategy": "strip", "ranks": 2, "checkpoint_every": 4,
        }
        out = tmp_path / "c"
        first = run_campaign(_spec(base=base, sweep={"beta": [0.5]}),
                             out_dir=out)
        assert first.ok
        run_dir = out / "runs" / first.outcomes[0].run.run_id
        assert any((run_dir / "checkpoints").glob("rank*.npz"))
        stale_key = first.outcomes[0].run.cache_key

        edited = _spec(base={**base, "n_sweeps": 14}, sweep={"beta": [0.5]})
        second = run_campaign(edited, out_dir=out, resume=True)
        assert second.ok
        assert second.counters["cached"] == 0
        assert second.counters["completed"] == 1
        # The stale artifacts (checkpoints included) were purged, not
        # resumed from: the run executed from scratch under the new key.
        assert not second.outcomes[0].resumed_from_checkpoint
        status = json.loads((run_dir / "campaign_run.json").read_text())
        assert status["cache_key"] == second.outcomes[0].run.cache_key
        assert status["cache_key"] != stale_key

    def test_interrupted_run_resumes_from_checkpoints(self, tmp_path):
        """An unfinished run with bundles restarts from them on resume."""
        base = {
            "n_sites": 8, "n_slices": 4, "n_sweeps": 10, "n_thermalize": 2,
            "strategy": "strip", "ranks": 2, "checkpoint_every": 4,
        }
        spec = _spec(base=base, sweep={"beta": [0.5]})
        out = tmp_path / "c"
        assert run_campaign(spec, out_dir=out).ok
        run_dir = out / "runs" / expand_grid(spec)[0].run_id
        # Simulate a kill that landed after checkpointing but before
        # completion: the status doc and results are gone, bundles stay.
        (run_dir / "campaign_run.json").unlink()
        (run_dir / "result.json").unlink()
        resumed = run_campaign(spec, out_dir=out, resume=True)
        assert resumed.ok
        assert resumed.counters["completed"] == 1
        assert resumed.outcomes[0].resumed_from_checkpoint
        assert (run_dir / "result.json").is_file()

    def test_config_error_fails_permanently_without_retry(self, tmp_path):
        spec = _spec(
            base={"n_sites": 6, "n_slices": 4, "n_sweeps": 10,
                  "n_thermalize": 2, "kernel": "no-such-kernel"},
            sweep={"beta": [0.5]},
            retries=2,
        )
        result = run_campaign(spec, out_dir=tmp_path / "c")
        assert not result.ok
        outcome = result.outcomes[0]
        assert outcome.status == "failed"
        assert outcome.attempts == 1, "config errors must not be retried"
        assert result.counters["retried"] == 0
        assert "exit 2" in outcome.error

    def test_fail_fast_skips_pending_runs(self, tmp_path):
        spec = _spec(
            base={"n_sites": 6, "n_slices": 4, "n_sweeps": 10,
                  "n_thermalize": 2, "kernel": "no-such-kernel"},
            sweep={"beta": [0.5, 1.0, 1.5]},
            jobs=1,
            retries=0,
            policy="fail-fast",
        )
        result = run_campaign(spec, out_dir=tmp_path / "c")
        assert not result.ok
        assert result.counters["failed"] >= 1
        assert result.counters["skipped"] >= 1
        assert result.counters["failed"] + result.counters["skipped"] == 3

    def test_retry_then_succeed_after_injected_rank_failure(self, tmp_path):
        """A CrashFault-driven RankFailure is transient: retry succeeds."""
        spec = _spec(sweep={"beta": [0.7]}, retries=2, backoff=0.01)
        real = subprocess_executor(spec.timeout)
        injected = []

        def ring(comm, n_rounds=6):
            total = 0.0
            right = (comm.rank + 1) % comm.size
            left = (comm.rank - 1) % comm.size
            for _ in range(n_rounds):
                total += comm.sendrecv(float(comm.rank), dest=right,
                                       source=left)
            return total

        async def flaky(run, argv, attempt):
            if attempt == 0:
                # A genuine fault-injected SPMD run: rank 1 of a 2-rank
                # ring dies at its third comm op.  Surface the failure
                # as the structured RankFailure a surviving driver
                # raises, which the scheduler must classify as
                # transient and retry.
                plan = FaultPlan((CrashFault(rank=1, at_step=3),))
                try:
                    run_spmd(ring, 2, IDEAL, fault_plan=plan,
                             recv_timeout=5.0)
                except InjectedRankCrash as exc:
                    report = exc.run_report
                    injected.append(report)
                    raise RankFailure(
                        failed_rank=report.failed_ranks()[0],
                        detected_by=report.aborted[0].rank,
                        via="dead-rank",
                        detail=repr(exc),
                    ) from exc
                raise AssertionError("fault plan did not fire")
            return await real(run, argv, attempt)

        result = run_campaign(spec, out_dir=tmp_path / "c", executor=flaky)
        assert result.ok
        outcome = result.outcomes[0]
        assert outcome.status == "completed"
        assert outcome.attempts == 2
        assert result.counters["retried"] == 1
        assert injected and injected[0].failed_ranks() == [1]

    def test_pool_width_never_enters_the_results(self, tmp_path):
        """--jobs 1 and --jobs 4 produce bit-identical result sets."""
        spec = _spec(sweep={"beta": [0.5, 1.0], "seed": [0, 1]})
        serial = run_campaign(spec, out_dir=tmp_path / "serial", jobs=1)
        wide = run_campaign(spec, out_dir=tmp_path / "wide", jobs=4)
        assert serial.ok and wide.ok
        for run in expand_grid(spec):
            a = tmp_path / "serial" / "runs" / run.run_id
            b = tmp_path / "wide" / "runs" / run.run_id
            ra = json.loads((a / "result.json").read_text())
            rb = json.loads((b / "result.json").read_text())
            assert ra["estimates"] == rb["estimates"], run.run_id
            with np.load(a / "result.npz") as na, \
                    np.load(b / "result.npz") as nb:
                for key in nb.files:
                    np.testing.assert_array_equal(na[key], nb[key])


# ======================================================================
# executor unit behavior
# ======================================================================


@fault
class TestSubprocessExecutor:
    def test_timeout_is_transient(self, tmp_path):
        execute = subprocess_executor(timeout=0.2)
        (run,) = expand_grid(_spec(sweep={"beta": [0.5]}))
        argv = [sys.executable, "-c", "import time; time.sleep(30)"]
        attempt = asyncio.run(execute(run, argv, 0))
        assert attempt.transient is True
        assert _is_transient(attempt)
        assert "timed out" in attempt.stderr_tail
        assert attempt.wall_seconds < 5.0

    def test_stderr_tail_captured(self, tmp_path):
        execute = subprocess_executor(timeout=30.0)
        (run,) = expand_grid(_spec(sweep={"beta": [0.5]}))
        argv = [sys.executable, "-c",
                "import sys; sys.stderr.write('boom-diag'); sys.exit(3)"]
        attempt = asyncio.run(execute(run, argv, 0))
        assert attempt.returncode == 3
        assert "boom-diag" in attempt.stderr_tail
