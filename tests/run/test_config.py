"""Tests for run configuration validation."""

import pytest

from repro.run.config import (
    ParallelLayout,
    TfimRunConfig,
    XXZ2DRunConfig,
    XXZRunConfig,
)


class TestParallelLayout:
    def test_defaults(self):
        layout = ParallelLayout()
        assert layout.strategy == "serial"
        assert layout.n_ranks == 1

    def test_unknown_strategy(self):
        with pytest.raises(ValueError, match="unknown strategy"):
            ParallelLayout(strategy="diagonal")

    def test_serial_multi_rank_rejected(self):
        with pytest.raises(ValueError):
            ParallelLayout(strategy="serial", n_ranks=4)

    def test_nonpositive_ranks_rejected(self):
        with pytest.raises(ValueError):
            ParallelLayout(strategy="strip", n_ranks=0)


class TestXXZRunConfig:
    def test_valid(self):
        cfg = XXZRunConfig(n_sites=8, beta=1.0)
        assert cfg.n_slices == 16

    def test_bad_beta(self):
        with pytest.raises(ValueError):
            XXZRunConfig(n_sites=8, beta=-1.0)

    def test_bad_slices(self):
        with pytest.raises(ValueError):
            XXZRunConfig(n_sites=8, beta=1.0, n_slices=5)

    def test_block_layout_rejected_for_chain(self):
        with pytest.raises(ValueError, match="no block layout"):
            XXZRunConfig(
                n_sites=8, beta=1.0,
                layout=ParallelLayout("block", 4),
            )

    def test_strip_layout_geometry_checked(self):
        with pytest.raises(ValueError, match="L % 4"):
            XXZRunConfig(
                n_sites=6, beta=1.0, periodic=True,
                layout=ParallelLayout("strip", 2),
            )
        with pytest.raises(ValueError, match="periodic"):
            XXZRunConfig(
                n_sites=8, beta=1.0, periodic=False,
                layout=ParallelLayout("strip", 2),
            )


class TestTfimRunConfig:
    def test_valid(self):
        cfg = TfimRunConfig(spatial_shape=(8,), beta=2.0)
        assert cfg.gamma == 1.0

    def test_3d_rejected(self):
        with pytest.raises(ValueError):
            TfimRunConfig(spatial_shape=(4, 4, 4), beta=1.0)

    def test_odd_extent_rejected(self):
        with pytest.raises(ValueError):
            TfimRunConfig(spatial_shape=(5,), beta=1.0)

    def test_zero_gamma_rejected(self):
        with pytest.raises(ValueError):
            TfimRunConfig(spatial_shape=(8,), beta=1.0, gamma=0.0)

    def test_strip_layout_rejected(self):
        with pytest.raises(ValueError, match="block"):
            TfimRunConfig(
                spatial_shape=(8,), beta=1.0,
                layout=ParallelLayout("strip", 2),
            )


class TestHealthFields:
    """The --health / --health-rules / --events-out config trio."""

    def test_defaults_off(self):
        cfg = XXZRunConfig(n_sites=8, beta=1.0)
        assert cfg.health is False
        assert cfg.health_rules is None and cfg.events_out is None

    def test_health_enables_companions(self):
        cfg = XXZRunConfig(n_sites=8, beta=1.0, health=True,
                           health_rules="rules.json", events_out="ev.jsonl")
        assert cfg.health

    @pytest.mark.parametrize("kw", [
        {"health_rules": "rules.json"},
        {"events_out": "ev.jsonl"},
    ])
    def test_companions_require_health(self, kw):
        with pytest.raises(ValueError, match="health"):
            XXZRunConfig(n_sites=8, beta=1.0, **kw)

    def test_all_config_kinds_carry_fields(self):
        for cfg in (
            XXZ2DRunConfig(lx=4, ly=4, beta=1.0, health=True),
            TfimRunConfig(spatial_shape=(8,), beta=1.0, health=True),
        ):
            assert cfg.health
