"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_parses_run_xxz(self):
        args = build_parser().parse_args(
            ["run-xxz", "--sites", "8", "--beta", "1.0", "--strategy", "strip",
             "--ranks", "2", "--machine", "Paragon"]
        )
        assert args.sites == 8
        assert args.machine == "Paragon"

    def test_rejects_unknown_machine(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["run-xxz", "--sites", "8", "--beta", "1", "--machine", "Cray-1"]
            )


class TestCommands:
    def test_machines_lists_all(self, capsys):
        assert main(["machines"]) == 0
        out = capsys.readouterr().out
        for name in ("CM-5", "Paragon", "nCUBE-2", "Delta", "Ideal"):
            assert name in out

    def test_scaling_table(self, capsys):
        assert main(["scaling", "--machine", "Paragon", "--lx", "32", "--ly",
                     "32", "--slices", "8", "--max-p", "16"]) == 0
        out = capsys.readouterr().out
        assert "speedup" in out
        assert "16" in out

    def test_scaling_strip_stops_at_lattice_limit(self, capsys):
        assert main(["scaling", "--strategy", "strip", "--lx", "8", "--ly", "8",
                     "--slices", "8", "--max-p", "64"]) == 0
        out = capsys.readouterr().out
        assert "stopping at P=16" in out

    def test_run_xxz_smoke(self, capsys, tmp_path):
        out_path = tmp_path / "res"
        code = main([
            "run-xxz", "--sites", "8", "--beta", "0.5", "--slices", "8",
            "--sweeps", "50", "--thermalize", "5", "--output", str(out_path),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "energy" in out
        doc = json.loads((tmp_path / "res.json").read_text())
        assert doc["kind"] == "xxz"

    def test_run_tfim_smoke(self, capsys):
        code = main([
            "run-tfim", "--shape", "8", "--beta", "1.0", "--gamma", "1.0",
            "--slices", "8", "--sweeps", "50", "--thermalize", "5",
        ])
        assert code == 0
        assert "sigma_x" in capsys.readouterr().out

    def test_run_tfim_2d_shape(self, capsys):
        code = main([
            "run-tfim", "--shape", "4x4", "--beta", "1.0", "--slices", "8",
            "--sweeps", "30", "--thermalize", "5",
        ])
        assert code == 0

    def test_invalid_config_returns_error_code(self, capsys):
        code = main([
            "run-xxz", "--sites", "7", "--beta", "1.0", "--sweeps", "10",
        ])
        assert code == 2
        assert "error" in capsys.readouterr().err


class TestXXZ2DCommand:
    def test_run_xxz2d_smoke(self, capsys):
        code = main([
            "run-xxz2d", "--lx", "2", "--ly", "4", "--beta", "0.5",
            "--slices", "8", "--sweeps", "40", "--thermalize", "5",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "staggered_structure_factor" in out

    def test_run_xxz2d_rejects_strip(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["run-xxz2d", "--lx", "4", "--ly", "4", "--beta", "1",
                 "--strategy", "strip"]
            )
