"""Tests for exact-resume checkpointing."""

import numpy as np
import pytest

from repro.models.hamiltonians import XXZChainModel, XXZSquareModel
from repro.qmc.classical_ising import AnisotropicIsing
from repro.qmc.tfim import TfimQmc
from repro.qmc.worldline import WorldlineChainQmc
from repro.qmc.worldline2d import WorldlineSquareQmc
from repro.run.checkpoint import load_checkpoint, save_checkpoint


def assert_bitwise_resume(make_sampler, run, tmp_path, n_before=20, n_after=30):
    """save at t, resume in a fresh sampler, compare with uninterrupted."""
    a = make_sampler()
    for _ in range(n_before):
        run(a)
    save_checkpoint(a, tmp_path / "state.npz")
    # Uninterrupted continuation.
    for _ in range(n_after):
        run(a)

    b = make_sampler()
    load_checkpoint(b, tmp_path / "state.npz")
    for _ in range(n_after):
        run(b)

    sa = a.classical.spins if hasattr(a, "classical") else a.spins
    sb = b.classical.spins if hasattr(b, "classical") else b.spins
    np.testing.assert_array_equal(sa, sb)


class TestBitwiseResume:
    def test_worldline_chain(self, tmp_path):
        model = XXZChainModel(n_sites=8, periodic=True)
        assert_bitwise_resume(
            lambda: WorldlineChainQmc(model, 0.5, 8, seed=3),
            lambda s: s.sweep(),
            tmp_path,
        )

    def test_worldline_square(self, tmp_path):
        model = XXZSquareModel(lx=2, ly=4)
        assert_bitwise_resume(
            lambda: WorldlineSquareQmc(model, 0.5, 8, seed=5),
            lambda s: s.sweep(),
            tmp_path,
            n_before=5,
            n_after=8,
        )

    def test_classical_ising(self, tmp_path):
        assert_bitwise_resume(
            lambda: AnisotropicIsing((8, 8), (0.3, 0.3), seed=7, hot_start=True),
            lambda s: s.sweep(),
            tmp_path,
        )

    def test_tfim_delegates_to_classical(self, tmp_path):
        assert_bitwise_resume(
            lambda: TfimQmc((8,), 1.0, 1.0, 2.0, 16, seed=9),
            lambda s: s.sweep(),
            tmp_path,
        )


class TestValidation:
    def test_shape_mismatch_rejected(self, tmp_path):
        a = AnisotropicIsing((4, 4), (0.3, 0.3), seed=1)
        save_checkpoint(a, tmp_path / "s.npz")
        b = AnisotropicIsing((6, 6), (0.3, 0.3), seed=1)
        with pytest.raises(ValueError, match="lattice"):
            load_checkpoint(b, tmp_path / "s.npz")

    def test_class_mismatch_rejected(self, tmp_path):
        a = AnisotropicIsing((4, 4), (0.3, 0.3), seed=1)
        save_checkpoint(a, tmp_path / "s.npz")
        model = XXZChainModel(n_sites=4, periodic=True)
        b = WorldlineChainQmc(model, 0.5, 4 + 4, seed=1)
        with pytest.raises(ValueError, match="state"):
            load_checkpoint(b, tmp_path / "s.npz")

    def test_counters_restored(self, tmp_path):
        a = AnisotropicIsing((4, 4), (0.3, 0.3), seed=2, hot_start=True)
        for _ in range(10):
            a.sweep()
        save_checkpoint(a, tmp_path / "s.npz")
        b = AnisotropicIsing((4, 4), (0.3, 0.3), seed=99)
        load_checkpoint(b, tmp_path / "s.npz")
        assert b.n_attempted == a.n_attempted
        assert b.n_accepted == a.n_accepted
        assert b.acceptance_rate == a.acceptance_rate
