"""Tests for exact-resume checkpointing, serial and distributed."""

import json
import pickle

import numpy as np
import pytest

from repro.models.hamiltonians import XXZChainModel, XXZSquareModel
from repro.qmc.classical_ising import AnisotropicIsing
from repro.qmc.parallel import (
    IsingBlockConfig,
    WorldlineStripConfig,
    ising_block_program,
    worldline_strip_program,
)
from repro.qmc.tfim import TfimQmc
from repro.qmc.worldline import WorldlineChainQmc
from repro.qmc.worldline2d import WorldlineSquareQmc
from repro.run.checkpoint import (
    CheckpointConfig,
    load_checkpoint,
    load_rank_checkpoint,
    rank_checkpoint_path,
    save_checkpoint,
    save_rank_checkpoint,
)
from repro.vmp.machines import IDEAL
from repro.vmp.scheduler import run_spmd


def assert_bitwise_resume(make_sampler, run, tmp_path, n_before=20, n_after=30):
    """save at t, resume in a fresh sampler, compare with uninterrupted."""
    a = make_sampler()
    for _ in range(n_before):
        run(a)
    save_checkpoint(a, tmp_path / "state.npz")
    # Uninterrupted continuation.
    for _ in range(n_after):
        run(a)

    b = make_sampler()
    load_checkpoint(b, tmp_path / "state.npz")
    for _ in range(n_after):
        run(b)

    sa = a.classical.spins if hasattr(a, "classical") else a.spins
    sb = b.classical.spins if hasattr(b, "classical") else b.spins
    np.testing.assert_array_equal(sa, sb)


class TestBitwiseResume:
    def test_worldline_chain(self, tmp_path):
        model = XXZChainModel(n_sites=8, periodic=True)
        assert_bitwise_resume(
            lambda: WorldlineChainQmc(model, 0.5, 8, seed=3),
            lambda s: s.sweep(),
            tmp_path,
        )

    def test_worldline_square(self, tmp_path):
        model = XXZSquareModel(lx=2, ly=4)
        assert_bitwise_resume(
            lambda: WorldlineSquareQmc(model, 0.5, 8, seed=5),
            lambda s: s.sweep(),
            tmp_path,
            n_before=5,
            n_after=8,
        )

    def test_classical_ising(self, tmp_path):
        assert_bitwise_resume(
            lambda: AnisotropicIsing((8, 8), (0.3, 0.3), seed=7, hot_start=True),
            lambda s: s.sweep(),
            tmp_path,
        )

    def test_tfim_delegates_to_classical(self, tmp_path):
        assert_bitwise_resume(
            lambda: TfimQmc((8,), 1.0, 1.0, 2.0, 16, seed=9),
            lambda s: s.sweep(),
            tmp_path,
        )


class TestValidation:
    def test_shape_mismatch_rejected(self, tmp_path):
        a = AnisotropicIsing((4, 4), (0.3, 0.3), seed=1)
        save_checkpoint(a, tmp_path / "s.npz")
        b = AnisotropicIsing((6, 6), (0.3, 0.3), seed=1)
        with pytest.raises(ValueError, match="lattice"):
            load_checkpoint(b, tmp_path / "s.npz")

    def test_class_mismatch_rejected(self, tmp_path):
        a = AnisotropicIsing((4, 4), (0.3, 0.3), seed=1)
        save_checkpoint(a, tmp_path / "s.npz")
        model = XXZChainModel(n_sites=4, periodic=True)
        b = WorldlineChainQmc(model, 0.5, 4 + 4, seed=1)
        with pytest.raises(ValueError, match="state"):
            load_checkpoint(b, tmp_path / "s.npz")

    def test_counters_restored(self, tmp_path):
        a = AnisotropicIsing((4, 4), (0.3, 0.3), seed=2, hot_start=True)
        for _ in range(10):
            a.sweep()
        save_checkpoint(a, tmp_path / "s.npz")
        b = AnisotropicIsing((4, 4), (0.3, 0.3), seed=99)
        load_checkpoint(b, tmp_path / "s.npz")
        assert b.n_attempted == a.n_attempted
        assert b.n_accepted == a.n_accepted
        assert b.acceptance_rate == a.acceptance_rate


# ======================================================================
# distributed per-rank checkpoint/restart
# ======================================================================


def _strip_cfg(n_sweeps, mode):
    return WorldlineStripConfig(
        n_sites=16,
        jz=1.0,
        jxy=0.8,
        beta=1.0,
        n_slices=8,
        n_sweeps=n_sweeps,
        n_thermalize=2,
        mode=mode,
        sweep_seed=7,
    )


def _block_cfg(n_sweeps):
    return IsingBlockConfig(
        lx=4, ly=4, lt=4, kx=0.3, ky=0.2, kt=0.4,
        n_sweeps=n_sweeps, n_thermalize=1, sweep_seed=11,
    )


def _bundle_arrays(directory, rank):
    with np.load(rank_checkpoint_path(directory, rank)) as data:
        return {k: data[k].copy() for k in data.files if k != "meta"}


class TestStripDriverResume:
    """Interrupted + resumed == uninterrupted, bit for bit.

    The uninterrupted run writes its own final checkpoint, so the
    comparison covers the complete rank state -- local spins with ghost
    layers, RNG stream bytes, counters -- not just the observable
    series.
    """

    @pytest.mark.parametrize("p", [1, 2, 4])
    @pytest.mark.parametrize("mode", ["scalar", "vectorized"])
    def test_resume_is_bit_identical(self, tmp_path, p, mode):
        full = _strip_cfg(n_sweeps=6, mode=mode)
        ref_dir = tmp_path / "ref"
        ref = run_spmd(
            worldline_strip_program, p, IDEAL, seed=3,
            args=(full, CheckpointConfig(ref_dir, every=3)),
        ).values[0]

        # Interrupted run: stops after 3 of 6 sweeps, checkpointing.
        res_dir = tmp_path / "res"
        run_spmd(
            worldline_strip_program, p, IDEAL, seed=3,
            args=(_strip_cfg(n_sweeps=3, mode=mode),
                  CheckpointConfig(res_dir, every=3)),
        )
        resumed = run_spmd(
            worldline_strip_program, p, IDEAL, seed=3,
            args=(full, CheckpointConfig(res_dir, every=3, resume=True)),
        ).values[0]

        np.testing.assert_array_equal(resumed["energy"], ref["energy"])
        np.testing.assert_array_equal(
            resumed["magnetization"], ref["magnetization"]
        )
        np.testing.assert_array_equal(resumed["owned_spins"], ref["owned_spins"])
        # Full rank state including RNG stream bytes and ghost layers.
        for r in range(p):
            a, b = _bundle_arrays(ref_dir, r), _bundle_arrays(res_dir, r)
            assert sorted(a) == sorted(b)
            for key in a:
                np.testing.assert_array_equal(a[key], b[key], err_msg=key)

    def test_cross_mode_resume(self, tmp_path):
        """Scalar checkpoints resume under vectorized kernels (and stay
        bit-identical): the trajectory is mode-independent by design."""
        ref = run_spmd(
            worldline_strip_program, 2, IDEAL, seed=3,
            args=(_strip_cfg(n_sweeps=6, mode="vectorized"),),
        ).values[0]
        d = tmp_path / "ck"
        run_spmd(
            worldline_strip_program, 2, IDEAL, seed=3,
            args=(_strip_cfg(n_sweeps=3, mode="scalar"),
                  CheckpointConfig(d, every=3)),
        )
        resumed = run_spmd(
            worldline_strip_program, 2, IDEAL, seed=3,
            args=(_strip_cfg(n_sweeps=6, mode="vectorized"),
                  CheckpointConfig(d, resume=True)),
        ).values[0]
        np.testing.assert_array_equal(resumed["energy"], ref["energy"])
        np.testing.assert_array_equal(
            resumed["owned_spins"], ref["owned_spins"]
        )

    def test_checkpoint_interval_not_aligned_with_stop(self, tmp_path):
        """A run killed between checkpoints resumes from the last one."""
        ref = run_spmd(
            worldline_strip_program, 2, IDEAL, seed=3,
            args=(_strip_cfg(n_sweeps=7, mode="vectorized"),),
        ).values[0]
        d = tmp_path / "ck"
        # Dies after sweep 5; last bundle is from sweep 4 (every=2).
        run_spmd(
            worldline_strip_program, 2, IDEAL, seed=3,
            args=(_strip_cfg(n_sweeps=5, mode="vectorized"),
                  CheckpointConfig(d, every=2)),
        )
        resumed = run_spmd(
            worldline_strip_program, 2, IDEAL, seed=3,
            args=(_strip_cfg(n_sweeps=7, mode="vectorized"),
                  CheckpointConfig(d, resume=True)),
        ).values[0]
        np.testing.assert_array_equal(resumed["energy"], ref["energy"])
        np.testing.assert_array_equal(
            resumed["magnetization"], ref["magnetization"]
        )


class TestBlockDriverResume:
    def test_resume_is_bit_identical(self, tmp_path):
        full = _block_cfg(n_sweeps=6)
        ref = run_spmd(
            ising_block_program, 2, IDEAL, seed=5, args=(full,)
        ).values[0]
        d = tmp_path / "ck"
        run_spmd(
            ising_block_program, 2, IDEAL, seed=5,
            args=(_block_cfg(n_sweeps=2), CheckpointConfig(d, every=2)),
        )
        resumed = run_spmd(
            ising_block_program, 2, IDEAL, seed=5,
            args=(full, CheckpointConfig(d, resume=True)),
        ).values[0]
        np.testing.assert_array_equal(
            resumed["magnetization"], ref["magnetization"]
        )
        np.testing.assert_array_equal(resumed["bond_sums"], ref["bond_sums"])
        np.testing.assert_array_equal(resumed["block"], ref["block"])


class TestDistributedValidation:
    def _write_checkpoint(self, directory, p=2):
        run_spmd(
            worldline_strip_program, p, IDEAL, seed=3,
            args=(_strip_cfg(n_sweeps=3, mode="vectorized"),
                  CheckpointConfig(directory, every=3)),
        )

    def _rewrite_bundle(self, path, meta_edit=None, array_edit=None):
        """Round-trip a bundle through an edit (corruption injector)."""
        with np.load(path) as data:
            meta = json.loads(bytes(data["meta"]).decode())
            arrays = {k: data[k].copy() for k in data.files if k != "meta"}
        if meta_edit:
            meta_edit(meta)
        if array_edit:
            array_edit(arrays)
        np.savez_compressed(
            path,
            meta=np.frombuffer(json.dumps(meta).encode(), dtype=np.uint8),
            **arrays,
        )

    def _resume(self, directory, p=2):
        return run_spmd(
            worldline_strip_program, p, IDEAL, seed=3,
            args=(_strip_cfg(n_sweeps=6, mode="vectorized"),
                  CheckpointConfig(directory, resume=True)),
        )

    def test_missing_bundle_is_a_clear_error(self, tmp_path):
        with pytest.raises(FileNotFoundError, match="rank 0"):
            self._resume(tmp_path)

    def test_version_mismatch_rejected(self, tmp_path):
        self._write_checkpoint(tmp_path)
        for r in range(2):
            self._rewrite_bundle(
                rank_checkpoint_path(tmp_path, r),
                meta_edit=lambda m: m.update(dist_version=99),
            )
        with pytest.raises(ValueError, match="version"):
            self._resume(tmp_path)

    def test_rank_count_mismatch_rejected(self, tmp_path):
        self._write_checkpoint(tmp_path, p=2)
        with pytest.raises(ValueError, match="n_ranks"):
            self._resume(tmp_path, p=4)

    def test_seed_mismatch_rejected(self, tmp_path):
        self._write_checkpoint(tmp_path)
        for r in range(2):
            self._rewrite_bundle(
                rank_checkpoint_path(tmp_path, r),
                meta_edit=lambda m: m.update(sweep_seed=999),
            )
        with pytest.raises(ValueError, match="sweep_seed"):
            self._resume(tmp_path)

    def test_wrong_bit_generator_rejected(self, tmp_path):
        self._write_checkpoint(tmp_path)
        alien = np.random.Generator(np.random.MT19937(5)).bit_generator.state
        packed = np.frombuffer(pickle.dumps(alien), dtype=np.uint8)
        for r in range(2):
            self._rewrite_bundle(
                rank_checkpoint_path(tmp_path, r),
                array_edit=lambda a: a.update(rng_state=packed),
            )
        with pytest.raises(ValueError, match="MT19937"):
            self._resume(tmp_path)

    def test_shape_mismatch_rejected(self, tmp_path):
        self._write_checkpoint(tmp_path)
        for r in range(2):
            self._rewrite_bundle(
                rank_checkpoint_path(tmp_path, r),
                array_edit=lambda a: a.update(loc=a["loc"][:, ::2].copy()),
            )
        with pytest.raises(ValueError, match="strip block"):
            self._resume(tmp_path)

    def test_config_validation(self, tmp_path):
        with pytest.raises(ValueError, match="interval"):
            CheckpointConfig(tmp_path, every=-1)
        with pytest.raises(ValueError, match="does nothing"):
            CheckpointConfig(tmp_path, every=0, resume=False)

    def test_bundle_rank_field_checked(self, tmp_path):
        save_rank_checkpoint(tmp_path, 0, {"driver": "x"}, {"a": np.arange(3)})
        import shutil

        shutil.copy(
            rank_checkpoint_path(tmp_path, 0), rank_checkpoint_path(tmp_path, 1)
        )
        with pytest.raises(ValueError, match="holds rank 0"):
            load_rank_checkpoint(tmp_path, 1)


# ======================================================================
# two-level (ensemble x domain) composed layouts
# ======================================================================


class TestTwoLevelResume:
    """Composed R x P checkpoints: per-replica bundles + layout manifest.

    Each replica checkpoints its strip state into a ``replica####/``
    subdirectory and world rank 0 records the composed geometry in
    ``layout.json``; a resume must validate that manifest before any
    rank state is touched, so a flat checkpoint or a different
    geometry fails with a clear error instead of a bundle mismatch
    deep inside one replica.
    """

    def _tl_cfg(self, n_sweeps, replicas=2, domain_ranks=2):
        from repro.qmc.two_level import TwoLevelConfig

        return TwoLevelConfig(
            replicas=replicas,
            domain_ranks=domain_ranks,
            base=_strip_cfg(n_sweeps=n_sweeps, mode="vectorized"),
        )

    def _run(self, cfg, ckpt=None):
        from repro.qmc.two_level import two_level_program

        return run_spmd(
            two_level_program, cfg.n_ranks, IDEAL, seed=3, args=(cfg, ckpt)
        )

    def test_mid_campaign_resume_is_bit_identical(self, tmp_path):
        full = self._tl_cfg(n_sweeps=6)
        ref = self._run(full)
        d = tmp_path / "ck"
        # Interrupted mid-campaign: 3 of 6 sweeps, then resume.
        self._run(self._tl_cfg(n_sweeps=3), CheckpointConfig(d, every=3))
        resumed = self._run(full, CheckpointConfig(d, resume=True))
        for r_ref, r_got in zip(ref.values, resumed.values):
            # Counters restart at resume (they are not in the bundle,
            # matching the flat strip driver); the trajectory must not.
            for key in ("energy", "magnetization", "owned_spins",
                        "ensemble_energy", "ensemble_magnetization"):
                np.testing.assert_array_equal(r_got[key], r_ref[key],
                                              err_msg=key)

    def test_bundles_live_in_replica_subdirectories(self, tmp_path):
        from repro.qmc.two_level import (
            read_layout_manifest,
            replica_checkpoint_dir,
        )

        d = tmp_path / "ck"
        self._run(self._tl_cfg(n_sweeps=3), CheckpointConfig(d, every=3))
        assert read_layout_manifest(d) == {
            "layout": "two-level", "replicas": 2, "domain_ranks": 2,
        }
        for replica in range(2):
            sub = replica_checkpoint_dir(d, replica)
            for domain_rank in range(2):
                assert rank_checkpoint_path(sub, domain_rank).exists()

    def test_flat_checkpoint_rejected_with_clear_error(self, tmp_path):
        # A genuine flat strip checkpoint: same world size, no manifest.
        d = tmp_path / "flat"
        run_spmd(
            worldline_strip_program, 4, IDEAL, seed=3,
            args=(_strip_cfg(n_sweeps=3, mode="vectorized"),
                  CheckpointConfig(d, every=3)),
        )
        with pytest.raises(ValueError, match="no layout.json manifest"):
            self._run(self._tl_cfg(n_sweeps=6),
                      CheckpointConfig(d, resume=True))

    def test_geometry_mismatch_rejected(self, tmp_path):
        d = tmp_path / "ck"
        self._run(self._tl_cfg(n_sweeps=3), CheckpointConfig(d, every=3))
        # Same world size (4), different composition: 4 x 1 vs 2 x 2.
        with pytest.raises(ValueError, match="layout mismatch"):
            self._run(self._tl_cfg(n_sweeps=6, replicas=4, domain_ranks=1),
                      CheckpointConfig(d, resume=True))

    def test_malformed_manifest_rejected(self, tmp_path):
        from repro.qmc.two_level import read_layout_manifest

        d = tmp_path / "ck"
        d.mkdir()
        (d / "layout.json").write_text(json.dumps({"layout": "strip"}))
        with pytest.raises(ValueError, match="expected 'two-level'"):
            read_layout_manifest(d)


class TestSerialValidationBugfix:
    """Regression: load_checkpoint must fail loudly, not restore halfway."""

    def _rewrite(self, path, meta_edit=None, rng_state=None):
        with np.load(path) as data:
            meta = json.loads(bytes(data["meta"]).decode())
            spins = data["spins"].copy()
            rng = data["rng_state"].copy()
        if meta_edit:
            meta_edit(meta)
        if rng_state is not None:
            rng = np.frombuffer(pickle.dumps(rng_state), dtype=np.uint8)
        np.savez_compressed(
            path,
            spins=spins,
            rng_state=rng,
            meta=np.frombuffer(json.dumps(meta).encode(), dtype=np.uint8),
        )

    def test_missing_counters_rejected_not_skipped(self, tmp_path):
        a = AnisotropicIsing((4, 4), (0.3, 0.3), seed=2, hot_start=True)
        for _ in range(5):
            a.sweep()
        path = tmp_path / "s.npz"
        save_checkpoint(a, path)
        self._rewrite(
            path,
            meta_edit=lambda m: (m.pop("n_attempted"), m.pop("n_accepted")),
        )
        b = AnisotropicIsing((4, 4), (0.3, 0.3), seed=99)
        with pytest.raises(ValueError, match="counters"):
            load_checkpoint(b, path)

    def test_wrong_bit_generator_rejected(self, tmp_path):
        a = AnisotropicIsing((4, 4), (0.3, 0.3), seed=2)
        path = tmp_path / "s.npz"
        save_checkpoint(a, path)
        alien = np.random.Generator(np.random.MT19937(5)).bit_generator.state
        self._rewrite(path, rng_state=alien)
        b = AnisotropicIsing((4, 4), (0.3, 0.3), seed=99)
        with pytest.raises(ValueError, match="MT19937"):
            load_checkpoint(b, path)

    def test_failed_load_leaves_sampler_untouched(self, tmp_path):
        a = AnisotropicIsing((4, 4), (0.3, 0.3), seed=2, hot_start=True)
        for _ in range(5):
            a.sweep()
        path = tmp_path / "s.npz"
        save_checkpoint(a, path)
        alien = np.random.Generator(np.random.MT19937(5)).bit_generator.state
        self._rewrite(path, rng_state=alien)
        b = AnisotropicIsing((4, 4), (0.3, 0.3), seed=99, hot_start=True)
        spins_before = b.spins.copy()
        state_before = b.stream.generator.bit_generator.state
        with pytest.raises(ValueError):
            load_checkpoint(b, path)
        np.testing.assert_array_equal(b.spins, spins_before)
        assert b.stream.generator.bit_generator.state == state_before
