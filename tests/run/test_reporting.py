"""Status reporting and the health engine on the facade's serial paths."""

import io
import json

import pytest

from repro.cli import main
from repro.run.config import (
    ParallelLayout,
    TfimRunConfig,
    XXZ2DRunConfig,
    XXZRunConfig,
)
from repro.run.reporting import StatusReporter, format_health_verdict
from repro.run.simulation import Simulation


class TestStatusReporter:
    def test_buffers_and_flushes_once(self):
        stream = io.StringIO()
        rep = StatusReporter(stream=stream)
        rep.info("line one")
        rep.info("line two")
        assert stream.getvalue() == ""  # nothing until flush
        rep.flush()
        assert stream.getvalue() == "line one\nline two\n"
        rep.flush()  # idempotent once drained
        assert stream.getvalue() == "line one\nline two\n"

    def test_quiet_drops_everything(self):
        stream = io.StringIO()
        rep = StatusReporter(quiet=True, stream=stream)
        rep.info("secret")
        rep.flush()
        assert stream.getvalue() == ""


class TestHealthVerdict:
    def test_ok(self):
        assert format_health_verdict({"healthy": True, "n_events": 0}) == \
            "health: OK"
        assert "2 informational" in format_health_verdict(
            {"healthy": True, "n_events": 2})

    def test_attention(self):
        verdict = format_health_verdict(
            {"healthy": False,
             "by_severity": {"critical": 1, "warning": 3}})
        assert verdict == "health: ATTENTION (1 critical, 3 warning)"


class TestQuietFlag:
    def test_quiet_run_prints_nothing(self, capsys, tmp_path):
        out_path = tmp_path / "res"
        code = main([
            "run-xxz", "--sites", "8", "--beta", "0.5", "--slices", "8",
            "--sweeps", "20", "--thermalize", "2", "--quiet",
            "--output", str(out_path),
        ])
        assert code == 0
        assert capsys.readouterr().out == ""
        # The machine artifact is still written.
        assert (tmp_path / "res.json").exists()

    def test_default_prints_summary(self, capsys):
        assert main([
            "run-xxz", "--sites", "8", "--beta", "0.5", "--slices", "8",
            "--sweeps", "20", "--thermalize", "2",
        ]) == 0
        assert "energy" in capsys.readouterr().out


class TestSerialPathHealth:
    """Post-hoc health on the serial/replica (non-SPMD) facade paths."""

    def test_xxz_serial_health_summary(self):
        cfg = XXZRunConfig(n_sites=8, beta=1.0, n_sweeps=40, n_thermalize=5,
                           health=True)
        result = Simulation(cfg).run()
        health = result.runtime["health"]
        assert health["healthy"] in (True, False)
        assert "by_severity" in health and "rules" in health

    def test_xxz2d_in_run_health(self):
        cfg = XXZ2DRunConfig(lx=4, ly=4, beta=1.0, n_sweeps=30,
                             n_thermalize=2, health=True)
        result = Simulation(cfg).run()
        assert "health" in result.runtime

    def test_tfim_serial_health(self):
        cfg = TfimRunConfig(spatial_shape=(8,), beta=1.0, n_sweeps=30,
                            n_thermalize=2, health=True)
        result = Simulation(cfg).run()
        assert "health" in result.runtime

    def test_replica_layout_health(self):
        cfg = XXZRunConfig(
            n_sites=8, beta=1.0, n_sweeps=30, n_thermalize=2, health=True,
            layout=ParallelLayout("replica", 2),
        )
        result = Simulation(cfg).run()
        assert "health" in result.runtime

    def test_injected_fault_reaches_summary_line(self, capsys, tmp_path):
        rules = tmp_path / "rules.json"
        rules.write_text(json.dumps({"acceptance_band": [0.9, 1.0]}))
        code = main([
            "run-xxz", "--sites", "8", "--beta", "0.5", "--slices", "8",
            "--sweeps", "20", "--thermalize", "2",
            "--health", "--health-rules", str(rules),
        ])
        assert code == 0
        assert "health: ATTENTION" in capsys.readouterr().out

    def test_health_off_keeps_runtime_clean(self):
        cfg = XXZRunConfig(n_sites=8, beta=1.0, n_sweeps=20, n_thermalize=2)
        result = Simulation(cfg).run()
        assert "health" not in result.runtime

    def test_events_out_written_on_spmd_path(self, tmp_path):
        cfg = XXZRunConfig(
            n_sites=16, beta=1.0, n_sweeps=20, n_thermalize=2, health=True,
            events_out=str(tmp_path / "ev.jsonl"),
            layout=ParallelLayout("strip", 2),
        )
        result = Simulation(cfg).run()
        assert result.runtime["events_out"] == str(tmp_path / "ev.jsonl")
        header = json.loads((tmp_path / "ev.jsonl").read_text().splitlines()[0])
        assert header["schema"] == "repro.health.events"
