#!/usr/bin/env python3
"""Performance-regression gate over the smoke benchmark trajectory.

CI's smoke-benchmark job runs ``pytest benchmarks/ --smoke``, which
persists ``benchmarks/output/smoke/BENCH_perf_smoke.json`` (same schema
as the committed full-tier ``BENCH_perf.json``).  This script diffs the
fresh record against the committed baseline
``benchmarks/BENCH_smoke_baseline.json`` and fails (exit 1) on a
regression beyond the tolerance.

Only *ratio* metrics are gated -- absolute wall-clock throughput is a
property of the runner, but the ratios travel:

* per-case vectorized/scalar site-update speedup (``records``);
* strip-driver vectorized/scalar speedup on the thread backend at each
  P the two documents share (``parallel_records``);
* telemetry overhead of the ``metrics`` and ``health`` variants
  (``observability_overhead``; lower is better, compared with an
  absolute slack since their baselines sit near zero).  Smoke-tier
  overhead records are indicative only (50 ms runs cannot resolve a
  3% CPU ratio) and skipped; the committed full-tier
  ``BENCH_perf.json`` is gated against its absolute overhead bar
  instead;
* the modeled comm fraction of every overlapped A/B run
  (``overlap_records`` with ``overlap: true``; lower is better --
  these gate that the halo-overlap pipeline keeps hiding wire time);
* the per-layout comm fraction of the two-level ensemble x domain
  campaign (``two_level_records``, executed and modeled alike; lower
  is better, same ceiling as the overlap fractions), plus a structural
  check that the modeled full-machine (1024-node) record is present;
* the per-backend kernel-registry speedup over batched numpy
  (``kernel_records``, backends other than numpy only).  On top of the
  relative baseline diff, ``--require-kernel NAME=MIN`` (repeatable)
  enforces an absolute floor on a fresh kernel speedup, and
  ``--kernel-only`` skips the baseline diff entirely for CI jobs that
  run just the kernel benchmark.

A speedup metric regresses when it drops more than ``--tolerance``
(default 0.20, i.e. 20%) below the baseline; the overhead metric
regresses when it exceeds baseline + slack.  Waiver knob for known
noisy runners or intentional trade-offs: pass ``--waive "reason"`` (or
set ``CHECK_BENCH_WAIVE=reason``); the comparison still prints, but
the exit status is forced to 0 and the reason is echoed for the CI
log.  Refresh the baseline itself with ``--update-baseline`` after an
intentional perf change, and commit the new file.
"""

from __future__ import annotations

import argparse
import json
import os
import shutil
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
FRESH_DEFAULT = REPO_ROOT / "benchmarks" / "output" / "smoke" / "BENCH_perf_smoke.json"
BASELINE_DEFAULT = REPO_ROOT / "benchmarks" / "BENCH_smoke_baseline.json"
FULL_TIER_DEFAULT = REPO_ROOT / "BENCH_perf.json"

#: Absolute slack (in overhead fraction) granted to the telemetry
#: overhead metric on top of the relative tolerance: its baseline is a
#: few percent at most, so a purely relative bound would gate on noise.
OVERHEAD_SLACK = 0.05

#: Floors on the campaign-scheduler record (``campaign_records``).
#: ``cache_speedup`` is the fresh/resumed wall ratio of the identical
#: campaign: a cached rerun executes nothing, so even on a slow runner
#: it must be several times faster than actually sweeping.  The
#: aggregate-throughput floor is deliberately conservative (the bench
#: grid sweeps tiny 8-site chains; anything slower than this means the
#: scheduler itself is pathological, not the sampler).
CAMPAIGN_CACHE_SPEEDUP_FLOOR = 2.0
CAMPAIGN_MIN_SWEEPS_PER_S = 5.0

#: Absolute slack granted to the overlapped comm-fraction metrics: the
#: fractions are modeled (deterministic for a given geometry), but the
#: smoke tier runs fewer sweeps, so amortized collective costs shift a
#: little between runs of different lengths.
COMM_FRACTION_SLACK = 0.05


def _speedups(doc: dict) -> dict[str, float]:
    """All gated higher-is-better ratio metrics of one record document."""
    out: dict[str, float] = {}
    by_case: dict[str, dict[str, float]] = {}
    for rec in doc.get("records", []):
        by_case.setdefault(rec["case"], {})[rec["mode"]] = rec["site_updates_per_s"]
    for case, modes in sorted(by_case.items()):
        if "scalar" in modes and "vectorized" in modes:
            out[f"vectorized-speedup[{case}]"] = modes["vectorized"] / modes["scalar"]
    strip: dict[int, dict[str, float]] = {}
    for rec in doc.get("parallel_records", []):
        if rec.get("backend") == "thread":
            strip.setdefault(rec["p"], {})[rec["mode"]] = rec["site_updates_per_s"]
    for p, modes in sorted(strip.items()):
        if "scalar" in modes and "vectorized" in modes:
            out[f"strip-speedup[P={p}]"] = modes["vectorized"] / modes["scalar"]
    for name, ratio in sorted(_kernel_speedups(doc).items()):
        out[name] = ratio
    return out


def _kernel_speedups(doc: dict) -> dict[str, float]:
    """Per-backend warm speedup over batched numpy (``kernel_records``).

    The numpy record itself is excluded (its ratio is 1.0 by
    construction); records only exist for backends installed on the
    runner, so a numpy-only baseline never gates a numba-enabled fresh
    run and vice versa -- hard floors come from ``--require-kernel``.
    """
    out: dict[str, float] = {}
    for rec in doc.get("kernel_records", []):
        if rec.get("backend") != "numpy" and "speedup_vs_numpy" in rec:
            out[f"kernel-speedup[{rec['backend']}]"] = float(
                rec["speedup_vs_numpy"]
            )
    return out


def _require_kernels(fresh: dict, requirements: list[str]) -> list[str]:
    """Enforce ``NAME=MIN`` lower bounds on the fresh kernel speedups.

    Unlike the baseline diff (relative, tolerance-padded), these are
    absolute floors: the CI numba job passes ``--require-kernel
    numba=3.0`` so the JIT backend can never quietly decay to numpy
    speed even if a slow baseline were committed.
    """
    failures: list[str] = []
    speedups = _kernel_speedups(fresh)
    for spec in requirements:
        name, _, minimum = spec.partition("=")
        try:
            floor = float(minimum)
        except ValueError:
            failures.append(f"--require-kernel {spec!r}: expected NAME=MIN")
            continue
        key = f"kernel-speedup[{name}]"
        if key not in speedups:
            failures.append(
                f"{key}: no fresh kernel record for backend {name!r} "
                f"(is it installed on this runner?)"
            )
            continue
        got = speedups[key]
        status = "ok" if got >= floor else "BELOW FLOOR"
        print(f"  {key:45s} required {floor:8.2f}  fresh {got:8.2f}  "
              f"{status}")
        if got < floor:
            failures.append(
                f"{key}: {got:.2f}x is below the required floor {floor:.2f}x"
            )
    return failures


def _overlap_fractions(doc: dict) -> dict[str, float]:
    """Modeled comm fraction of each overlapped A/B run (lower is better)."""
    out: dict[str, float] = {}
    for rec in doc.get("overlap_records", []):
        if rec.get("overlap") and rec.get("comm_fraction_modeled") is not None:
            name = f"overlap-comm-fraction[{rec['case']}, P={rec['p']}]"
            out[name] = float(rec["comm_fraction_modeled"])
    return out


def _two_level_fractions(doc: dict) -> dict[str, float]:
    """Per-layout comm fraction of the two-level records (lower is better).

    Executed and modeled records gate alike (the modeled full-machine
    record is tagged so a layout can exist in both flavours); the
    fractions are deterministic on the machine model, with the same
    sweep-count sensitivity as the overlap fractions.
    """
    out: dict[str, float] = {}
    for rec in doc.get("two_level_records", []):
        if rec.get("comm_fraction_modeled") is None:
            continue
        tag = rec["layout"] + ("" if rec.get("executed") else " modeled")
        out[f"two-level-comm-fraction[{tag}]"] = float(
            rec["comm_fraction_modeled"]
        )
    return out


def check_campaign_records(doc: dict, required: bool = False) -> list[str]:
    """Gate the campaign-scheduler records of one document.

    Structural checks: the fresh leg completed the whole grid with no
    failures, and the cached rerun reports at least one cache hit (in
    fact the full grid -- a rerun of an untouched campaign must never
    recompute).  Perf floors: the fresh/resumed wall ratio
    (``cache_speedup``) and the aggregate sweeps/s, both conservative
    absolute bounds rather than baseline diffs because campaign wall
    time is dominated by runner-specific process startup.

    With ``required=False`` a document without ``campaign_records`` is
    skipped (the kernel-only and perf-kernel-only invocations never run
    the campaign benchmark); ``required=True`` makes absence a failure.
    """
    records = doc.get("campaign_records")
    if not records:
        if required:
            return ["campaign_records: missing (run 'pytest "
                    "benchmarks/bench_campaign.py --smoke' first)"]
        print("  (no campaign_records in the fresh document; campaign "
              "gate skipped)")
        return []
    failures: list[str] = []
    for rec in records:
        tag = f"tier={rec.get('tier', '?')}"
        fresh, resumed = rec.get("fresh", {}), rec.get("resumed", {})
        n_runs = rec.get("n_runs", 0)
        checks = [
            (f"campaign-fresh-completed[{tag}]",
             fresh.get("completed"), "==", n_runs),
            (f"campaign-fresh-failed[{tag}]",
             fresh.get("failed"), "==", 0),
            (f"campaign-cache-hits[{tag}]",
             resumed.get("cache_hits"), ">=", 1),
            (f"campaign-resumed-completed[{tag}]",
             resumed.get("completed"), "==", 0),
            (f"campaign-cache-speedup[{tag}]",
             rec.get("cache_speedup"), ">=", CAMPAIGN_CACHE_SPEEDUP_FLOOR),
            (f"campaign-agg-sweeps-per-s[{tag}]",
             fresh.get("sweeps_per_second"), ">=", CAMPAIGN_MIN_SWEEPS_PER_S),
        ]
        for name, got, op, want in checks:
            ok = got is not None and (
                got == want if op == "==" else got >= want
            )
            status = "ok" if ok else "FAILED"
            shown = "missing" if got is None else f"{got:8.2f}"
            print(f"  {name:45s} required {op} {want:<8} got {shown}  "
                  f"{status}")
            if not ok:
                failures.append(
                    f"{name}: got {got!r}, required {op} {want}"
                )
    return failures


#: Telemetry variants gated against the baseline (lower is better).
#: ``metrics+trace`` is diagnostics-grade and deliberately ungated.
GATED_OVERHEAD_VARIANTS = ("metrics", "health")


def _overheads(doc: dict) -> dict[str, float]:
    """Gated per-variant telemetry overheads of one record document.

    Smoke-tier sections (runs of ~50 ms) cannot resolve percent-level
    CPU ratios, so they return empty: the overhead gate runs on the
    committed full-tier ``BENCH_perf.json`` instead (see
    :func:`check_committed_overheads`).
    """
    section = doc.get("observability_overhead") or {}
    if section.get("tier") == "smoke":
        return {}
    out: dict[str, float] = {}
    for rec in section.get("records", []):
        if rec.get("variant") in GATED_OVERHEAD_VARIANTS:
            out[rec["variant"]] = float(rec["overhead_vs_disabled"])
    return out


def check_committed_overheads(path: Path) -> list[str]:
    """Gate the committed full-tier overhead record against its bar.

    The full-tier benchmark measures the telemetry overheads with
    best-of-reps CPU ratios and persists them with the acceptance bar;
    this re-asserts, deterministically, that the committed record shows
    every gated variant under that bar -- so a regression cannot be
    committed by simply re-running the benchmark on a noisy host and
    pasting in whatever it printed.
    """
    failures: list[str] = []
    if not path.exists():
        return [f"committed overhead record missing: {path}"]
    doc = json.loads(path.read_text())
    section = doc.get("observability_overhead") or {}
    bar = float(section.get("overhead_bar", 0.03))
    overheads = _overheads(doc)
    for variant in GATED_OVERHEAD_VARIANTS:
        if variant not in overheads:
            failures.append(
                f"telemetry-overhead[{variant}]: missing from {path.name}"
            )
            continue
        got = overheads[variant]
        status = "ok" if got < bar else "OVER BAR"
        print(f"  {f'telemetry-overhead[{variant}]':45s} "
              f"bar {bar:8.3f}  committed {got:8.3f}  {status}")
        if got >= bar:
            failures.append(
                f"telemetry-overhead[{variant}]: committed {got:.3f} "
                f"is over the {bar:.0%} bar in {path.name}"
            )
    return failures


def compare(fresh: dict, baseline: dict, tolerance: float) -> list[str]:
    """Return one failure message per regressed metric (empty: pass)."""
    failures: list[str] = []
    fresh_speed, base_speed = _speedups(fresh), _speedups(baseline)
    for name in sorted(base_speed):
        if name not in fresh_speed:
            failures.append(f"{name}: missing from the fresh record")
            continue
        got, want = fresh_speed[name], base_speed[name]
        floor = want * (1.0 - tolerance)
        status = "ok" if got >= floor else "REGRESSED"
        print(f"  {name:45s} baseline {want:8.2f}  fresh {got:8.2f}  "
              f"floor {floor:8.2f}  {status}")
        if got < floor:
            failures.append(
                f"{name}: {got:.2f} is {1 - got / want:.0%} below the "
                f"baseline {want:.2f} (tolerance {tolerance:.0%})"
            )
    fresh_frac = {**_overlap_fractions(fresh), **_two_level_fractions(fresh)}
    base_frac = {**_overlap_fractions(baseline),
                 **_two_level_fractions(baseline)}
    if baseline.get("two_level_records") and not any(
        not rec.get("executed")
        for rec in fresh.get("two_level_records", [])
    ):
        failures.append(
            "two_level_records: the modeled full-machine record is missing "
            "from the fresh document"
        )
    for name in sorted(base_frac):
        if name not in fresh_frac:
            failures.append(f"{name}: missing from the fresh record")
            continue
        got, want = fresh_frac[name], base_frac[name]
        ceil = want + COMM_FRACTION_SLACK + tolerance * abs(want)
        status = "ok" if got <= ceil else "REGRESSED"
        print(f"  {name:45s} baseline {want:8.3f}  fresh {got:8.3f}  "
              f"ceiling {ceil:8.3f}  {status}")
        if got > ceil:
            failures.append(
                f"{name}: {got:.3f} exceeds baseline {want:.3f} + slack "
                f"(ceiling {ceil:.3f})"
            )
    fresh_ovh, base_ovh = _overheads(fresh), _overheads(baseline)
    if not base_ovh:
        print("  (no gated observability_overhead in the baseline; the "
              "committed full-tier record carries the overhead gate)")
    for variant in sorted(base_ovh):
        name = f"telemetry-overhead[{variant}]"
        if variant not in fresh_ovh:
            failures.append(f"{name}: missing from the fresh record")
            continue
        got_ovh, want_ovh = fresh_ovh[variant], base_ovh[variant]
        ceil = want_ovh + OVERHEAD_SLACK + tolerance * abs(want_ovh)
        status = "ok" if got_ovh <= ceil else "REGRESSED"
        print(f"  {name:45s} baseline {want_ovh:8.3f}  "
              f"fresh {got_ovh:8.3f}  ceiling {ceil:8.3f}  {status}")
        if got_ovh > ceil:
            failures.append(
                f"{name}: {got_ovh:.3f} exceeds baseline "
                f"{want_ovh:.3f} + slack (ceiling {ceil:.3f})"
            )
    return failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--fresh", type=Path, default=FRESH_DEFAULT,
                        help="fresh smoke record (from pytest benchmarks --smoke)")
    parser.add_argument("--baseline", type=Path, default=BASELINE_DEFAULT,
                        help="committed baseline record")
    parser.add_argument("--tolerance", type=float, default=0.20,
                        help="allowed fractional drop of speedup metrics "
                             "(default 0.20)")
    parser.add_argument("--require-kernel", metavar="NAME=MIN", action="append",
                        default=[],
                        help="absolute lower bound on a fresh kernel-speedup "
                             "ratio, e.g. numba=3.0 (repeatable; checked in "
                             "addition to the baseline diff)")
    parser.add_argument("--kernel-only", action="store_true",
                        help="skip the baseline diff and check only the "
                             "--require-kernel floors (for CI jobs that run "
                             "just the kernel benchmark)")
    parser.add_argument("--full-tier", action="store_true",
                        help="gate a full-tier document's internal "
                             "invariants (telemetry-overhead bars, campaign "
                             "floors, structural records) without diffing "
                             "against the smoke baseline; for the nightly "
                             "full-benchmark workflow, pass --fresh "
                             "BENCH_perf.json")
    parser.add_argument("--waive", metavar="REASON", default=None,
                        help="report but do not fail (also: CHECK_BENCH_WAIVE "
                             "env var)")
    parser.add_argument("--update-baseline", action="store_true",
                        help="copy the fresh record over the baseline instead "
                             "of comparing (commit the result)")
    args = parser.parse_args(argv)

    if not args.fresh.exists():
        print(f"error: no fresh record at {args.fresh}; run "
              f"'pytest benchmarks/bench_perf_kernels.py "
              f"benchmarks/bench_obs_overhead.py --smoke' first",
              file=sys.stderr)
        return 2
    if args.update_baseline:
        args.baseline.parent.mkdir(parents=True, exist_ok=True)
        shutil.copyfile(args.fresh, args.baseline)
        print(f"baseline updated from {args.fresh}")
        return 0
    if not args.kernel_only and not args.baseline.exists():
        print(f"error: no baseline at {args.baseline}; generate one with "
              f"--update-baseline and commit it", file=sys.stderr)
        return 2

    fresh = json.loads(args.fresh.read_text())
    failures: list[str] = []
    if args.kernel_only:
        print(f"checking kernel floors in {args.fresh.name} "
              f"(baseline diff skipped):")
    elif args.full_tier:
        print(f"checking full-tier document {args.fresh.name} "
              f"(baseline diff skipped):")
        failures += check_committed_overheads(args.fresh)
        failures += check_campaign_records(fresh, required=True)
        if fresh.get("two_level_records") and not any(
            not rec.get("executed")
            for rec in fresh["two_level_records"]
        ):
            failures.append(
                "two_level_records: the modeled full-machine record is "
                "missing from the fresh document"
            )
    else:
        baseline = json.loads(args.baseline.read_text())
        print(f"comparing {args.fresh.name} against {args.baseline.name} "
              f"(tolerance {args.tolerance:.0%}):")
        failures += compare(fresh, baseline, args.tolerance)
        print(f"checking campaign-scheduler records in {args.fresh.name}:")
        failures += check_campaign_records(fresh)
        print(f"checking committed telemetry overheads in "
              f"{FULL_TIER_DEFAULT.name}:")
        failures += check_committed_overheads(FULL_TIER_DEFAULT)
    failures += _require_kernels(fresh, args.require_kernel)

    waiver = args.waive or os.environ.get("CHECK_BENCH_WAIVE")
    if failures:
        print(f"\n{len(failures)} perf regression(s):")
        for f in failures:
            print(f"  - {f}")
        if waiver:
            print(f"\nWAIVED ({waiver}); exiting 0 despite regressions")
            return 0
        return 1
    print("\nno perf regressions")
    return 0


if __name__ == "__main__":
    sys.exit(main())
