#!/usr/bin/env python3
"""Parallel tempering + multi-histogram reweighting (WHAM).

Eight simulated ranks each hold one temperature of a 2-D Ising model
spanning the critical region; neighboring replicas exchange
configurations, and the per-rank energy histograms are combined by
multiple-histogram reweighting into a single density-of-states estimate
from which the specific-heat curve is interpolated at *any*
temperature.  The peak location is compared against Onsager's exact
T_c.

Run:  python examples/parallel_tempering_wham.py
"""

import numpy as np

from repro.models.ising_exact import onsager_critical_temperature
from repro.qmc.tempering import (
    TemperingConfig,
    histograms_from_results,
    tempering_program,
)
from repro.stats.wham import multi_histogram_reweight
from repro.util.tables import Series, Table, render_series
from repro.vmp import IDEAL, run_spmd

L = 12
TC = onsager_critical_temperature()


def main() -> None:
    temperatures = np.linspace(1.8, 3.2, 8)
    betas = tuple(1.0 / t for t in temperatures)
    cfg = TemperingConfig(
        shape=(L, L),
        couplings_j=(1.0, 1.0),
        betas=betas,
        n_sweeps=2000,
        n_thermalize=400,
        exchange_every=5,
        histogram_bins=96,
    )
    res = run_spmd(tempering_program, len(betas), machine=IDEAL, seed=3, args=(cfg,))
    results = res.values

    table = Table(
        f"parallel tempering, {L}x{L} Ising, {len(betas)} replicas",
        ["T", "<E>/N", "swap acc."],
    )
    for r in results:
        acc = r["exchange_accepts"] / max(r["exchange_attempts"], 1)
        table.add_row([1.0 / r["beta"], np.mean(r["energy"]) / L**2, acc])
    print(table.render())

    hists = histograms_from_results(results)
    wham = multi_histogram_reweight(hists, [r["beta"] for r in results])
    print(f"\nWHAM converged in {wham.iterations} iterations")

    c = Series("C/N")
    ts = np.linspace(1.9, 3.1, 25)
    for t in ts:
        c.add(t, wham.specific_heat(1.0 / t) / L**2)
    print(render_series("specific heat per site (WHAM-interpolated)", [c],
                        x_label="T"))
    t_peak = c.x[int(np.argmax(c.y))]
    print(f"\nspecific-heat peak at T ~ {t_peak:.2f}; "
          f"Onsager T_c = {TC:.3f} (finite L={L} shifts the peak slightly)")


if __name__ == "__main__":
    main()
