"""Quickstart for the real-MPI backend: run a rank program under mpiexec.

The VMP subpackage executes the *same* rank programs on three backends:
cooperative threads (default), OS processes, and — this example — real
MPI via mpi4py.  The program below is the stock strip-decomposed
world-line driver from :mod:`repro.qmc.parallel`, unchanged; only the
transport differs, and the trajectory is bit-identical across backends
at the same seed.

Run it two ways:

1. Launched under mpiexec (each MPI process becomes one rank)::

       mpiexec -n 4 python examples/mpi_quickstart.py

2. As a plain process (the script falls back to the thread backend and
   prints the same numbers)::

       python examples/mpi_quickstart.py

The equivalent CLI invocation::

    mpiexec -n 4 python -m repro run-xxz --sites 16 --beta 1.0 \
        --slices 16 --sweeps 200 --strategy strip --ranks 4 \
        --machine Paragon --backend mpi

Requires mpi4py plus an MPI runtime (e.g. ``apt install libopenmpi-dev
openmpi-bin && pip install mpi4py``) for the mpiexec path.
"""

import numpy as np

from repro.qmc.parallel import WorldlineStripConfig, worldline_strip_program
from repro.vmp import MACHINES, run_spmd
from repro.vmp.mpi_backend import (
    in_mpi_world,
    run_mpi_world,
    world_rank_hint,
    world_size_hint,
)


def main() -> None:
    n_ranks = world_size_hint() if in_mpi_world() else 4
    cfg = WorldlineStripConfig(
        n_sites=16,
        jz=1.0,
        jxy=1.0,
        beta=1.0,
        n_slices=16,
        n_sweeps=200,
        n_thermalize=50,
    )
    machine = MACHINES["Paragon"]

    if in_mpi_world():
        result = run_mpi_world(
            worldline_strip_program, machine=machine, seed=7, args=(cfg, None)
        )
        backend = "mpi"
        if world_rank_hint() != 0:  # all ranks hold the result; rank 0 reports
            return
        values, makespan = result.values, max(result.model_times)
    else:
        result = run_spmd(
            worldline_strip_program, n_ranks, machine=machine, seed=7, args=(cfg, None)
        )
        backend = "thread"
        values, makespan = result.values, result.elapsed_model_time

    energy = values[0]["energy"]  # identical on every rank (allreduced)
    print(f"backend          : {backend} ({n_ranks} ranks on {machine.name})")
    print(f"modeled makespan : {makespan * 1e3:.3f} ms")
    print(f"<E> per site     : {np.mean(energy) / cfg.n_sites:+.6f}")
    print("trajectory hash  :", hash(energy.tobytes()))


if __name__ == "__main__":
    main()
