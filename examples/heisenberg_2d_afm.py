#!/usr/bin/env python3
"""The 2-D Heisenberg antiferromagnet by world-line QMC.

The physics target that drove early parallel QMC (parent compounds of
high-T_c superconductors are 2-D spin-1/2 Heisenberg antiferromagnets):
cooling the 4x4 model, the energy approaches the exact (in-repo
Lanczos) ground state while the staggered structure factor S(pi,pi)
grows -- antiferromagnetic order building up.

Run:  python examples/heisenberg_2d_afm.py   (~2-3 minutes)
"""

from repro.models.ed import lanczos_ground_state
from repro.models.hamiltonians import XXZSquareModel
from repro.qmc.worldline2d import WorldlineSquareQmc
from repro.stats.binning import BinningAnalysis
from repro.util.tables import Series, Table, render_series

MODEL = XXZSquareModel(lx=4, ly=4)
N = 16


def main() -> None:
    e0 = float(lanczos_ground_state(MODEL.build_sparse())[0])
    print(f"exact 4x4 ground state (Lanczos): E0 = {e0:.4f}  "
          f"({e0 / N:.4f} per site)\n")

    table = Table(
        "4x4 Heisenberg antiferromagnet: cooling run",
        ["T/J", "E/N", "err", "S(pi,pi)", "chi"],
    )
    s_series = Series("S(pi,pi)")
    for k, (beta, m, sweeps) in enumerate(
        [(0.5, 6, 2000), (1.0, 12, 1500), (2.0, 20, 1200), (4.0, 40, 1000)]
    ):
        q = WorldlineSquareQmc(MODEL, beta, 4 * m, seed=40 + k)
        meas = q.run(n_sweeps=sweeps, n_thermalize=sweeps // 5)
        ba = BinningAnalysis.from_series(meas.energy)
        s_afm = meas.staggered_structure_factor(N)
        table.add_row(
            [1 / beta, ba.mean / N, ba.error / N, s_afm, meas.susceptibility(N)]
        )
        s_series.add(1 / beta, s_afm)
    print(table.render())
    print()
    print(render_series("antiferromagnetic order vs temperature",
                        [s_series], x_label="T/J"))
    print("\nExpected: E/N falls toward E0/N = %.4f; S(pi,pi) grows as T" % (e0 / N))
    print("falls (AFM correlations); uniform chi stays finite (no net moment).")


if __name__ == "__main__":
    main()
