#!/usr/bin/env python3
"""A gallery of world-line configurations.

Draws the space-time configurations the world-line method actually
samples, across temperature: at high temperature (T >> J) quantum
exchange barely matters and the world lines run nearly straight --
the configuration is almost classical; cooling far below J, exchange
kinks proliferate (beta grows the imaginary-time extent and with it the
number of spin-exchange events that build the quantum correlations).
Also demonstrates the message-timeline trace of a parallel run.

Run:  python examples/worldline_gallery.py
"""

from repro.models.hamiltonians import XXZChainModel
from repro.qmc.visualize import kink_positions, render_worldlines
from repro.qmc.worldline import WorldlineChainQmc


def show(beta: float, n_slices: int, sweeps: int) -> None:
    model = XXZChainModel(n_sites=16, periodic=True)
    q = WorldlineChainQmc(model, beta, n_slices, seed=8)
    for _ in range(sweeps):
        q.sweep()
    print(f"--- beta = {beta} (T = {1/beta:.2f} J), {n_slices} slices, "
          f"acceptance {q.acceptance_rate:.2f} ---")
    print(render_worldlines(q.spins))
    density = len(kink_positions(q.spins)) / q.spins.size
    print(f"kink density: {density:.3f} per site-slice\n")


def parallel_trace_demo() -> None:
    from repro.qmc.parallel import WorldlineStripConfig, worldline_strip_program
    from repro.vmp import PARAGON, run_spmd

    cfg = WorldlineStripConfig(
        n_sites=16, jz=1.0, jxy=1.0, beta=1.0, n_slices=8,
        n_sweeps=2, n_thermalize=0,
    )
    res = run_spmd(worldline_strip_program, 4, machine=PARAGON, seed=1,
                   args=(cfg,), trace=True)
    print("--- message timeline of 2 parallel sweeps on 4 Paragon nodes ---")
    print(res.render_timeline(width=64))
    print(f"({res.total_messages} messages, {res.total_bytes} bytes total)\n")


def main() -> None:
    show(beta=0.25, n_slices=8, sweeps=300)
    show(beta=4.0, n_slices=32, sweeps=600)
    parallel_trace_demo()
    print("Nearly classical straight lines at T >> J; kinks (spin-exchange")
    print("events) proliferate at low temperature, where quantum fluctuations")
    print("build the correlated ground-state structure.")


if __name__ == "__main__":
    main()
