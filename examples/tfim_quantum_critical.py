#!/usr/bin/env python3
"""Quantum critical crossover of the 1-D transverse-field Ising model.

Sweeps the transverse field Gamma through the quantum critical point
Gamma = J at low temperature, tracking the order parameter <|m|>, its
Binder cumulant, and <sigma^x>.  The magnetization collapse around
Gamma/J = 1 is the qualitative signature the QMC must reproduce; the
transverse magnetization is checked against the exact free-fermion
solution along the way.

Run:  python examples/tfim_quantum_critical.py
"""

import numpy as np

from repro.models.tfim_exact import tfim_transverse_magnetization
from repro.qmc.tfim import TfimQmc
from repro.util.tables import Series, Table, render_series

L = 24
BETA = 8.0  # low temperature: quantum fluctuations dominate
N_SLICES = 64


def main() -> None:
    gammas = [0.2, 0.5, 0.8, 1.0, 1.2, 1.6, 2.4]
    table = Table(
        f"1-D TFIM, L={L}, beta={BETA}: crossing the quantum critical point",
        ["Gamma/J", "<|m|>", "U4", "<sx> QMC", "<sx> exact"],
    )
    mag = Series("<|m|>")
    for k, gamma in enumerate(gammas):
        q = TfimQmc((L,), j=1.0, gamma=gamma, beta=BETA, n_slices=N_SLICES,
                    seed=20 + k)
        meas = q.run(n_sweeps=2500, n_thermalize=400)
        m_abs = float(np.mean(meas.abs_magnetization))
        sx = float(np.mean(meas.sigma_x))
        sx_exact = tfim_transverse_magnetization(L, BETA, 1.0, gamma)
        table.add_row([gamma, m_abs, meas.binder_cumulant(), sx, sx_exact])
        mag.add(gamma, m_abs)
    print(table.render())
    print()
    print(render_series("order parameter vs transverse field", [mag],
                        x_label="Gamma/J"))
    print("\nExpected shape: <|m|> ~ 1 deep in the ordered phase "
          "(Gamma << J), collapsing near Gamma = J, ~ 0 beyond; "
          "<sigma^x> grows monotonically and tracks the exact curve.")


if __name__ == "__main__":
    main()
