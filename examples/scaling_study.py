#!/usr/bin/env python3
"""Parallel scaling study on the virtual massively parallel machines.

Reproduces the paper genre's two headline analyses:

1. executed small-P runs of the domain-decomposed TFIM sampler on the
   simulated CM-5/Paragon fabric (data actually moves; time is modeled),
2. the closed-form performance model pushed to 1024 nodes -- fixed-size
   speedup, scaled (Gustafson) speedup, and the communication fraction
   -- for several 1993 machines.

Run:  python examples/scaling_study.py
"""

from repro.qmc.classical_ising import FLOPS_PER_SPIN_UPDATE
from repro.qmc.parallel import IsingBlockConfig, ising_block_program
from repro.vmp import CM5, NCUBE2, PARAGON, run_spmd
from repro.vmp.performance import PerformanceModel, WorkloadShape
from repro.util.tables import Table


def executed_scaling() -> None:
    print("=== executed runs (TFIM 32x32x8 classical lattice, Paragon model) ===")
    cfg = IsingBlockConfig(
        lx=32, ly=32, lt=8, kx=0.05, ky=0.05, kt=0.8, n_sweeps=30
    )
    table = Table("small-P executed scaling", ["P", "T_model[s]", "speedup",
                                               "efficiency", "comm frac"])
    t1 = None
    for p in (1, 2, 4):
        res = run_spmd(ising_block_program, p, machine=PARAGON, seed=1, args=(cfg,))
        t = res.elapsed_model_time
        t1 = t1 or t
        table.add_row([p, t, t1 / t, t1 / t / p, res.comm_fraction()])
    print(table.render())


def modeled_scaling() -> None:
    print("\n=== performance model to 1024 nodes ===")
    w = WorkloadShape(
        lx=256, ly=256, lt=32,
        flops_per_site=2 * FLOPS_PER_SPIN_UPDATE,
        sweeps=1000, bytes_per_site=1, strategy="block",
    )
    for machine in (CM5, PARAGON, NCUBE2):
        pm = PerformanceModel(machine, w)
        table = Table(
            f"{machine.name}: 256x256 lattice, 32 slices",
            ["P", "speedup", "efficiency", "scaled speedup", "comm frac"],
        )
        p = 1
        while p <= min(1024, machine.max_nodes):
            table.add_row(
                [p, pm.speedup(p), pm.efficiency(p), pm.scaled_speedup(p),
                 pm.comm_fraction(p)]
            )
            p *= 4
        print(table.render())
        print()


def main() -> None:
    executed_scaling()
    modeled_scaling()
    print("Expected shape: executed and modeled efficiencies agree at small P;")
    print("fixed-size efficiency rolls off with P while scaled speedup stays")
    print("near-linear (Gustafson).  The CM-5 rolls off first in *efficiency*")
    print("(fast vector nodes paired with high per-message overhead) yet wins")
    print("in absolute time; the nCUBE-2's slow nodes hide its network, the")
    print("classic slow-processors-scale-better effect.")


if __name__ == "__main__":
    main()
