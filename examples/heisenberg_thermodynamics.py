#!/usr/bin/env python3
"""Thermodynamics of the spin-1/2 Heisenberg chain by world-line QMC.

Sweeps temperature, measuring energy per site and uniform
susceptibility, and compares each point against exact diagonalization.
Also demonstrates the Trotter dtau -> 0 extrapolation at one
temperature.  This is the workload class the original paper's
application section is built around.

Run:  python examples/heisenberg_thermodynamics.py
"""

from repro.models.ed import ExactDiagonalization
from repro.models.hamiltonians import XXZChainModel
from repro.qmc.trotter import trotter_extrapolate
from repro.qmc.worldline import WorldlineChainQmc
from repro.stats.binning import BinningAnalysis
from repro.util.tables import Table

L = 8
MODEL = XXZChainModel(n_sites=L, jz=1.0, jxy=1.0, periodic=True)


def qmc_point(beta: float, n_slices: int, seed: int):
    sampler = WorldlineChainQmc(MODEL, beta, n_slices, seed=seed)
    meas = sampler.run(n_sweeps=4000, n_thermalize=400)
    e = BinningAnalysis.from_series(meas.energy)
    chi = meas.susceptibility(L)
    return e.mean / L, e.error / L, chi


def main() -> None:
    ed = ExactDiagonalization(MODEL.build_sparse(), L)

    table = Table(
        f"Heisenberg chain L={L}: QMC vs exact diagonalization",
        ["T/J", "e_QMC", "err", "e_exact", "chi_QMC", "chi_exact"],
    )
    for k, temperature in enumerate((2.0, 1.0, 0.667, 0.5)):
        beta = 1.0 / temperature
        n_slices = max(8, int(8 * beta) * 2)
        e, de, chi = qmc_point(beta, n_slices, seed=10 + k)
        exact = ed.thermal(beta)
        table.add_row(
            [temperature, e, de, exact.energy / L, chi, exact.susceptibility]
        )
    print(table.render())

    print("\nTrotter extrapolation at T = J (beta = 1):")
    beta = 1.0

    def run_at(m):
        q = WorldlineChainQmc(MODEL, beta, 2 * m, seed=100 + m)
        return q.run(n_sweeps=3000, n_thermalize=300).energy

    e0, points = trotter_extrapolate(run_at, beta, [2, 4, 8])
    for p in points:
        print(f"  dtau = {p.dtau:.3f}:  E = {p.value:.4f} +- {p.error:.4f}")
    exact_e = ed.thermal(beta).energy
    print(f"  extrapolated dtau->0:  E = {e0:.4f}   (exact {exact_e:.4f})")

    print("\nSpin-spin correlations at beta = 1 (QMC):")
    q = WorldlineChainQmc(MODEL, 1.0, 16, seed=77)
    meas = q.run(n_sweeps=3000, n_thermalize=300)
    c = meas.szsz.mean(axis=0)
    for r, val in enumerate(c):
        bar = "#" * int(40 * abs(val) / 0.25)
        sign = "+" if val >= 0 else "-"
        print(f"  C({r}) = {val:+.4f} {sign}{bar}")
    print("  (antiferromagnetic sign alternation expected)")


if __name__ == "__main__":
    main()
