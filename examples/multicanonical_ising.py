#!/usr/bin/env python3
"""Wang-Landau + multicanonical sampling of the 2-D Ising model.

Estimates the density of states g(E) of an 8x8 Ising model with the
Wang-Landau recursion, then runs a fixed-weight multicanonical
production pass whose single trajectory random-walks across the whole
energy range -- from the ground state to complete disorder -- and
reweights to canonical averages at *any* temperature.  Compare with the
canonical sampler, which at low temperature is confined to a narrow
energy band.

Run:  python examples/multicanonical_ising.py
"""

import numpy as np

from repro.qmc.classical_ising import AnisotropicIsing
from repro.qmc.multicanonical import MulticanonicalSampler, WangLandauSampler
from repro.util.tables import Series, Table, render_series

L = 8
N = L * L


def main() -> None:
    print("Wang-Landau recursion (8x8 Ising)...")
    wl = WangLandauSampler(
        (L, L), (1.0, 1.0),
        e_min=-2.0 * N - 2.0, e_max=2.0 * N + 2.0, n_bins=2 * N + 1,
        seed=1, log_f_final=1e-5,
    )
    result = wl.run(sweeps_per_check=30)
    print(f"  converged after {result.iterations} f-halvings "
          f"(final ln f = {result.final_log_f:.2e})")

    log_g = result.log_g_normalized(N * np.log(2.0))
    entropy = Series("ln g(E)")
    for e, lg, ok in zip(result.bin_centers, log_g, result.visited):
        if ok:
            entropy.add(e, lg)
    print(render_series("microcanonical entropy ln g(E), 8x8 Ising",
                        [entropy], x_label="E"))

    print("\nmulticanonical production run...")
    muca = MulticanonicalSampler((L, L), (1.0, 1.0), result, seed=2)
    energies = muca.run(n_sweeps=6000, n_thermalize=300)
    print(f"  energy range visited: [{energies.min():.0f}, {energies.max():.0f}]"
          f" of [-{2 * N}, {2 * N}] -- one flat random walk")

    table = Table(
        "canonical <E>/N by multicanonical reweighting vs direct sampling",
        ["T", "muca reweighted", "direct canonical"],
    )
    for temp in (1.5, 2.27, 3.5):
        beta = 1.0 / temp
        direct = AnisotropicIsing((L, L), (beta, beta), seed=5, hot_start=True)
        obs = direct.run(n_sweeps=2000, n_thermalize=400)
        e_direct = float(np.mean(-(obs.bond_sums[:, 0] + obs.bond_sums[:, 1])))
        table.add_row([temp, muca.reweighted_energy(beta) / N, e_direct / N])
    print(table.render())
    print("\nOne multicanonical run covers every temperature at once; the")
    print("direct sampler needs a separate equilibrated run per temperature.")


if __name__ == "__main__":
    main()
