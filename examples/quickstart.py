#!/usr/bin/env python3
"""Quickstart: one quantum Monte Carlo run, serial and parallel.

Simulates the transverse-field Ising chain at finite temperature with
the high-level API, validates the energy against the exact free-fermion
solution, then reruns the identical physics domain-decomposed over four
nodes of a modeled Intel Paragon and reports the virtual machine's
timing.

Run:  python examples/quickstart.py
"""

from repro import ParallelLayout, Simulation, TfimRunConfig
from repro.models.tfim_exact import tfim_finite_temperature_energy


def main() -> None:
    n_sites, beta, gamma = 32, 2.0, 1.0

    print("=== serial run ===")
    cfg = TfimRunConfig(
        spatial_shape=(n_sites,),
        beta=beta,
        j=1.0,
        gamma=gamma,
        n_slices=32,
        n_sweeps=3000,
        n_thermalize=300,
        seed=1,
    )
    result = Simulation(cfg).run()
    print(result.summary())

    exact = tfim_finite_temperature_energy(n_sites, beta, 1.0, gamma)
    est = result.estimate("energy")
    print(f"\nexact free-fermion energy : {exact:.4f}")
    print(f"QMC estimate              : {est.value:.4f} +- {est.error:.4f}")
    agrees = est.agrees_with(exact, n_sigma=4, atol=0.02 * abs(exact))
    print(f"agreement within errors   : {agrees}")

    print("\n=== same physics on 4 Paragon nodes (block decomposition) ===")
    par = Simulation(
        TfimRunConfig(
            spatial_shape=(n_sites,),
            beta=beta,
            gamma=gamma,
            n_slices=32,
            n_sweeps=1500,
            n_thermalize=200,
            seed=2,
            layout=ParallelLayout("block", 4, "Paragon"),
        )
    ).run()
    print(par.summary())
    print(
        f"\nmodeled time-to-solution on the 1993 machine: "
        f"{par.model_time:.3f} s ({par.comm_fraction:.1%} communication)"
    )


if __name__ == "__main__":
    main()
